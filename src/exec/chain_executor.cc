#include "exec/chain_executor.h"

#include <cstddef>
#include <utility>

#include "common/macros.h"

namespace dqsched::exec {

int64_t FragmentRuntime::BytesToOpen(const ExecContext& ctx) const {
  if (opened_) return 0;
  int64_t bytes = 0;
  for (const plan::ChainOp& op : spec_.ops) {
    if (op.kind == plan::ChainOpKind::kProbe) {
      bytes += operands_->Get(op.join).BytesToLoad(ctx);
    }
  }
  return bytes;
}

Status FragmentRuntime::Open(ExecContext& ctx) {
  if (opened_) return Status::Ok();
  DQS_CHECK_MSG(!closed_, "open of closed fragment %s", name().c_str());
  for (size_t i = 0; i < spec_.ops.size(); ++i) {
    const plan::ChainOp& op = spec_.ops[i];
    if (op.kind != plan::ChainOpKind::kProbe) continue;
    Operand& operand = operands_->Get(op.join);
    DQS_CHECK_MSG(operand.sealed(),
                  "fragment %s opened before operand %s finished "
                  "(C-schedulability violated)",
                  name().c_str(), operand.name().c_str());
    Status loaded = operand.Load(ctx, spec_.async_io);
    if (!loaded.ok()) {
      // Unwind WITHOUT destroying operand data: a later DQO revision (or a
      // retry once memory frees up) must still be able to probe them.
      for (size_t j = 0; j < i; ++j) {
        if (spec_.ops[j].kind == plan::ChainOpKind::kProbe) {
          operands_->Get(spec_.ops[j].join).Unload(ctx);
        }
      }
      return loaded;
    }
  }
  opened_ = true;
  return Status::Ok();
}

Result<int64_t> FragmentRuntime::ProcessBatch(ExecContext& ctx,
                                              int64_t max_tuples) {
  DQS_CHECK_MSG(!closed_, "batch on closed fragment %s", name().c_str());
  DQS_RETURN_IF_ERROR(Open(ctx));
  if (max_tuples <= 0) return static_cast<int64_t>(0);

  // Buffers grow once to the batch size and are then reused as-is; the
  // input buffer doubles as the pipeline's first work buffer, so no batch
  // is ever copied before the first operator sees it.
  if (in_buf_.size() < static_cast<size_t>(max_tuples)) {
    in_buf_.resize(static_cast<size_t>(max_tuples));
    work_a_.reserve(static_cast<size_t>(max_tuples));
    work_b_.reserve(static_cast<size_t>(max_tuples));
  }
  const ChainSource::PopResult pop =
      source_->Pop(ctx, in_buf_.data(), max_tuples);
  if (pop.count == 0) return static_cast<int64_t>(0);
  stats_.consumed += pop.count;
  if (!pop.from_temp && source_->remote_source() != kInvalidId) {
    stats_.consumed_live += pop.count;
  }
  ++stats_.batches;

  if (spec_.kernels.scalar) return ProcessBatchScalar(ctx, pop);
  return ProcessBatchVectorized(ctx, pop);
}

// The original tuple-at-a-time kernels. Every simulated charge below is
// the contract the vectorized path must reproduce exactly: scan and sink
// moves on the batch boundary counts, a move per filter-input tuple, a
// hash probe per probe-input tuple, a produced-result instruction per
// match — all in canonical op order.
// dqs-analyze: begin-allow(kernel-push) — reference scalar kernels
Result<int64_t> FragmentRuntime::ProcessBatchScalar(
    ExecContext& ctx, const ChainSource::PopResult& pop) {
  int64_t instr = 0;
  // Receive cost: live network batches only (temp batches were received —
  // and charged — when they were first consumed by the materializer).
  if (!pop.from_temp && source_->remote_source() != kInvalidId) {
    ctx.clock.Advance(ctx.net.ChargeReceive(source_->remote_source(),
                                            pop.count));
  }
  // The scan's per-tuple move.
  instr += pop.count * ctx.cost->instr_move_tuple;

  // Operators consume a (data, count) span and emit into the spare work
  // buffer; the spans alternate between in_buf_/work_a_/work_b_.
  const storage::Tuple* cur = in_buf_.data();
  size_t cur_n = static_cast<size_t>(pop.count);
  std::vector<storage::Tuple>* out = &work_a_;
  std::vector<storage::Tuple>* spare = &work_b_;

  const size_t first_op =
      pop.from_temp ? static_cast<size_t>(spec_.temp_skip_ops) : 0;
  for (size_t oi = first_op; oi < spec_.ops.size(); ++oi) {
    const plan::ChainOp& op = spec_.ops[oi];
    out->clear();
    switch (op.kind) {
      case plan::ChainOpKind::kFilter: {
        instr += static_cast<int64_t>(cur_n) * ctx.cost->instr_move_tuple;
        if (oi + 1 < spec_.ops.size() &&
            spec_.ops[oi + 1].kind == plan::ChainOpKind::kProbe) {
          // Fused filter -> probe: passing tuples go straight into the
          // probe instead of being materialized into an intermediate
          // buffer. Charges are identical to the unfused path.
          const plan::ChainOp& probe = spec_.ops[oi + 1];
          const Operand& operand = operands_->Get(probe.join);
          DQS_CHECK_MSG(operand.loaded(),
                        "probe of unloaded operand %s by %s",
                        operand.name().c_str(), name().c_str());
          const auto& tuples = operand.tuples();
          const HashIndex& index = operand.index();
          const size_t key_field =
              static_cast<size_t>(probe.probe_key_field);
          int64_t passed = 0;
          for (size_t i = 0; i < cur_n; ++i) {
            if (i + 1 < cur_n) index.Prefetch(cur[i + 1].keys[key_field]);
            const storage::Tuple& t = cur[i];
            if (!storage::FilterPasses(t.rowid, op.node, op.selectivity)) {
              continue;
            }
            ++passed;
            index.ForEachMatch(t.keys[key_field], [&](size_t idx) {
              storage::Tuple r = t;  // probe-side fields carry through
              r.rowid = storage::CombineRowid(tuples[idx].rowid, t.rowid);
              out->push_back(r);
            });
          }
          instr += passed * ctx.cost->instr_hash_probe;
          instr += static_cast<int64_t>(out->size()) *
                   ctx.cost->instr_produce_result;
          ++oi;
          break;
        }
        for (size_t i = 0; i < cur_n; ++i) {
          const storage::Tuple& t = cur[i];
          if (storage::FilterPasses(t.rowid, op.node, op.selectivity)) {
            out->push_back(t);
          }
        }
        break;
      }
      case plan::ChainOpKind::kProbe: {
        const Operand& operand = operands_->Get(op.join);
        DQS_CHECK_MSG(operand.loaded(), "probe of unloaded operand %s by %s",
                      operand.name().c_str(), name().c_str());
        instr += static_cast<int64_t>(cur_n) * ctx.cost->instr_hash_probe;
        const auto& tuples = operand.tuples();
        const HashIndex& index = operand.index();
        const size_t key_field = static_cast<size_t>(op.probe_key_field);
        for (size_t i = 0; i < cur_n; ++i) {
          if (i + 1 < cur_n) index.Prefetch(cur[i + 1].keys[key_field]);
          const storage::Tuple& t = cur[i];
          index.ForEachMatch(t.keys[key_field], [&](size_t idx) {
            storage::Tuple r = t;  // probe-side fields carry through
            r.rowid = storage::CombineRowid(tuples[idx].rowid, t.rowid);
            out->push_back(r);
          });
        }
        instr += static_cast<int64_t>(out->size()) *
                 ctx.cost->instr_produce_result;
        break;
      }
    }
    cur = out->data();
    cur_n = out->size();
    std::swap(out, spare);
  }

  // Sink delivery.
  const int64_t out_n = static_cast<int64_t>(cur_n);
  instr += out_n * ctx.cost->instr_move_tuple;
  ctx.ChargeInstr(instr);
  switch (spec_.sink) {
    case SinkKind::kOperand:
      operands_->Get(spec_.sink_join).Append(ctx, cur, out_n,
                                             spec_.async_io);
      break;
    case SinkKind::kTemp:
      ctx.temps.Append(spec_.sink_temp, cur, out_n, spec_.async_io);
      break;
    case SinkKind::kResult:
      DQS_CHECK(result_ != nullptr);
      for (size_t i = 0; i < cur_n; ++i) result_->Add(cur[i]);
      break;
  }
  stats_.produced += out_n;
  // Asynchronously read input may land after the CPU work: wait for it.
  ctx.clock.BusyUntil(pop.ready);
  return pop.count;
}
// dqs-analyze: end-allow(kernel-push)

namespace {

/// Grow-only sizing for a scratch tuple buffer: `resize` value-initializes
/// only the new tail, and only when the high-water mark rises; the logical
/// count is tracked by the caller, so no per-batch zero-fill happens.
void GrowTuples(std::vector<storage::Tuple>* buf, int64_t n) {
  if (static_cast<int64_t>(buf->size()) < n) {
    buf->resize(static_cast<size_t>(n));
  }
}

/// Probe software-pipelining distance: hash the whole batch first, then
/// walk runs with the home slot of the i+kth probe prefetched while the
/// ith run is scanned.
constexpr uint32_t kProbePrefetchDistance = 8;

}  // namespace

FilterManager& FragmentRuntime::FilterRunAt(size_t start, size_t len) {
  if (filter_runs_.empty()) filter_runs_.resize(spec_.ops.size());
  std::unique_ptr<FilterManager>& slot = filter_runs_[start];
  if (!slot) {
    std::vector<plan::ChainOp> terms(
        spec_.ops.begin() + static_cast<ptrdiff_t>(start),
        spec_.ops.begin() + static_cast<ptrdiff_t>(start + len));
    slot = std::make_unique<FilterManager>(std::move(terms),
                                           spec_.kernels.adaptive_filters);
  }
  return *slot;
}

// Batch-at-a-time kernels. Filters refine a selection vector in place
// (no intermediate materialization); probes run as a vectorized
// hash+count pass followed by an expansion pass into a pre-sized buffer;
// sinks take one contiguous span. Charges are accumulated against the
// canonical op order with the exact counts the scalar kernels produce.
Result<int64_t> FragmentRuntime::ProcessBatchVectorized(
    ExecContext& ctx, const ChainSource::PopResult& pop) {
  int64_t instr = 0;
  // Receive cost: live network batches only (temp batches were received —
  // and charged — when they were first consumed by the materializer).
  if (!pop.from_temp && source_->remote_source() != kInvalidId) {
    ctx.clock.Advance(ctx.net.ChargeReceive(source_->remote_source(),
                                            pop.count));
  }
  // The scan's per-tuple move.
  instr += pop.count * ctx.cost->instr_move_tuple;

  const storage::Tuple* cur = in_buf_.data();
  int64_t cur_n = pop.count;
  sel_.Resize(static_cast<uint32_t>(pop.count));
  sel_.AddAll();
  std::vector<storage::Tuple>* out = &work_a_;
  std::vector<storage::Tuple>* spare = &work_b_;

  const size_t first_op =
      pop.from_temp ? static_cast<size_t>(spec_.temp_skip_ops) : 0;
  size_t oi = first_op;
  while (oi < spec_.ops.size()) {
    const plan::ChainOp& op = spec_.ops[oi];
    if (op.kind == plan::ChainOpKind::kFilter) {
      // A run of consecutive filters shares one FilterManager; each term's
      // canonical input count charges a move per tuple, exactly like the
      // scalar kernels (fused or not).
      size_t run_len = 1;
      while (oi + run_len < spec_.ops.size() &&
             spec_.ops[oi + run_len].kind == plan::ChainOpKind::kFilter) {
        ++run_len;
      }
      filter_charges_.clear();
      FilterRunAt(oi, run_len).Run(cur, &sel_, &filter_charges_);
      for (int64_t c : filter_charges_) instr += c * ctx.cost->instr_move_tuple;
      oi += run_len;
      continue;
    }

    // kProbe.
    const Operand& operand = operands_->Get(op.join);
    DQS_CHECK_MSG(operand.loaded(), "probe of unloaded operand %s by %s",
                  operand.name().c_str(), name().c_str());
    const auto& tuples = operand.tuples();
    const HashIndex& index = operand.index();
    const size_t key_field = static_cast<size_t>(op.probe_key_field);

    const uint32_t n_sel = sel_.Count();
    instr += static_cast<int64_t>(n_sel) * ctx.cost->instr_hash_probe;
    if (sel_ids_.size() < n_sel) {
      sel_ids_.resize(n_sel);
      probe_keys_.resize(n_sel);
      probe_homes_.resize(n_sel);
      match_counts_.resize(n_sel);
    }
    // With a full selection the ids are the identity — probe `cur`
    // directly instead of materializing 0..n-1.
    const uint32_t* ids = nullptr;
    if (!sel_.Full()) {
      sel_.Materialize(sel_ids_.data());
      ids = sel_ids_.data();
    }

    // Pass 1: gather keys and hash every probe up front, then resolve each
    // probe to (first-match slot, duplicate count) with the prefetcher
    // running kProbePrefetchDistance probes ahead — the branchy run walk
    // no longer stalls on the home-slot load, and it stops at the first
    // hit because the build stored the duplicate count there.
    for (uint32_t i = 0; i < n_sel; ++i) {
      const int64_t k = cur[ids ? ids[i] : i].keys[key_field];
      probe_keys_[i] = k;
      probe_homes_[i] = index.HomeSlot(k);
    }
    const uint32_t warm =
        n_sel < kProbePrefetchDistance ? n_sel : kProbePrefetchDistance;
    for (uint32_t i = 0; i < warm; ++i) index.PrefetchSlot(probe_homes_[i]);
    int64_t total_matches = 0;
    for (uint32_t i = 0; i < n_sel; ++i) {
      if (i + kProbePrefetchDistance < n_sel) {
        index.PrefetchSlot(probe_homes_[i + kProbePrefetchDistance]);
      }
      const uint64_t first =
          index.FindFirstMatchFrom(probe_homes_[i], probe_keys_[i]);
      probe_homes_[i] = first;  // reused: pass 2 expands from here
      const uint32_t c =
          first == HashIndex::kNoMatch ? 0 : index.MatchCountAt(first);
      match_counts_[i] = c;
      total_matches += c;
    }
    instr += total_matches * ctx.cost->instr_produce_result;

    // Pass 2: expand matches into a buffer pre-sized from the counts; the
    // walk order per probe matches ForEachMatch (ascending run positions)
    // and stops after exactly match_counts_[i] hits, so output order is
    // byte-identical to the scalar kernels with no wasted tail walk.
    GrowTuples(out, total_matches);
    storage::Tuple* dst = out->data();
    int64_t off = 0;
    for (uint32_t i = 0; i < n_sel; ++i) {
      if (match_counts_[i] == 0) continue;
      const storage::Tuple& t = cur[ids ? ids[i] : i];
      index.ForEachMatchFromN(probe_homes_[i], probe_keys_[i],
                              match_counts_[i], [&](size_t idx) {
                                storage::Tuple r = t;  // probe side carries
                                r.rowid = storage::CombineRowid(
                                    tuples[idx].rowid, t.rowid);
                                dst[off++] = r;
                              });
    }
    DQS_CHECK_MSG(off == total_matches, "probe expansion wrote %lld of %lld",
                  static_cast<long long>(off),
                  static_cast<long long>(total_matches));
    cur = dst;
    cur_n = total_matches;
    sel_.Resize(static_cast<uint32_t>(total_matches));
    sel_.AddAll();
    std::swap(out, spare);
    ++oi;
  }

  // Sink delivery. Trailing filters leave a partial selection; compact it
  // once so every sink receives one contiguous span (the common filterless
  // tail is zero-copy).
  int64_t out_n = cur_n;
  if (!sel_.Full()) {
    out_n = sel_.Count();
    GrowTuples(out, out_n);
    storage::Tuple* dst = out->data();
    int64_t k = 0;
    sel_.ForEach([&](uint32_t id) { dst[k++] = cur[id]; });
    cur = dst;
  }
  instr += out_n * ctx.cost->instr_move_tuple;
  ctx.ChargeInstr(instr);
  switch (spec_.sink) {
    case SinkKind::kOperand:
      operands_->Get(spec_.sink_join).Append(ctx, cur, out_n,
                                             spec_.async_io);
      break;
    case SinkKind::kTemp:
      ctx.temps.Append(spec_.sink_temp, cur, out_n, spec_.async_io);
      break;
    case SinkKind::kResult:
      DQS_CHECK(result_ != nullptr);
      result_->AddBatch(cur, out_n);
      break;
  }
  stats_.produced += out_n;
  // Asynchronously read input may land after the CPU work: wait for it.
  ctx.clock.BusyUntil(pop.ready);
  return pop.count;
}

std::unique_ptr<ChainSource> FragmentRuntime::TakeSource() {
  DQS_CHECK_MSG(stats_.consumed == 0 && !opened_,
                "TakeSource from started fragment %s", name().c_str());
  closed_ = true;  // the husk must never execute
  return std::move(source_);
}

bool FragmentRuntime::Finished(const ExecContext& ctx) const {
  return source_->Exhausted(ctx);
}

void FragmentRuntime::Stop(ExecContext& ctx) {
  if (closed_) return;
  switch (spec_.sink) {
    case SinkKind::kOperand:
      // Operands cannot be partially sealed; only temp sinks stop early.
      DQS_CHECK_MSG(false, "Stop() on operand-sink fragment %s",
                    name().c_str());
      break;
    case SinkKind::kTemp:
      ctx.temps.Seal(spec_.sink_temp);
      break;
    case SinkKind::kResult:
      DQS_CHECK_MSG(false, "Stop() on result fragment %s", name().c_str());
      break;
  }
  closed_ = true;
}

void FragmentRuntime::Close(ExecContext& ctx) {
  if (closed_) return;
  DQS_CHECK_MSG(Finished(ctx), "close of unfinished fragment %s",
                name().c_str());
  switch (spec_.sink) {
    case SinkKind::kOperand:
      operands_->Get(spec_.sink_join).Seal(ctx);
      break;
    case SinkKind::kTemp:
      ctx.temps.Seal(spec_.sink_temp);
      break;
    case SinkKind::kResult:
      break;
  }
  // Release the operands this fragment probed; each join has exactly one
  // probing fragment, so nothing else needs them.
  if (opened_) {
    for (const plan::ChainOp& op : spec_.ops) {
      if (op.kind == plan::ChainOpKind::kProbe) {
        operands_->Get(op.join).ReleaseAll(ctx);
      }
    }
  }
  closed_ = true;
}

}  // namespace dqsched::exec
