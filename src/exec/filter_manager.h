// Adaptive multi-term filter evaluation over a selection vector.
//
// A chain with several consecutive filter operators gives the kernel a
// choice of evaluation order. The FilterManager observes each term's
// actual selectivity and per-tuple host cost (EWMA over batches) and
// evaluates terms cheapest-most-selective first — the classic
// selectivity×cost ranking — so the host spends the least wall time per
// batch. The *simulated* charges are a determinism contract, though: the
// scalar executor charges every filter `n_i × instr_move_tuple` where n_i
// is the term's input cardinality in canonical (plan) order, and every
// non-wall metric must stay byte-identical no matter what order the host
// evaluated in. See DESIGN §10 for the two modes:
//
//   * canonical mode (adaptivity off, or a single term): terms run in plan
//     order against the shrinking selection; the canonical prefix counts
//     fall out of the evaluation itself.
//   * permuted dense mode: each term is evaluated as an independent bitmap
//     over the run's input selection, in rank order; the final selection
//     is the intersection, and the canonical prefix counts are recovered
//     from popcounts of the canonical-order prefix ANDs. A term may skip
//     words that are zero in the AND of its *canonically preceding*,
//     already-evaluated terms (those bits cannot survive the prefix AND
//     it participates in), which restores most of short-circuiting's
//     savings without breaking the contract.
//
// Adaptive decisions read the host clock — that is safe precisely because
// they only pick the evaluation order, never the charges or the final
// selection (filters are pure predicates on tuple provenance).

#ifndef DQSCHED_EXEC_FILTER_MANAGER_H_
#define DQSCHED_EXEC_FILTER_MANAGER_H_

#include <cstdint>
#include <vector>

#include "exec/tuple_id_list.h"
#include "plan/compiled_plan.h"
#include "storage/tuple.h"

namespace dqsched::exec {

/// Runs one chain's contiguous run of filter terms over a batch.
class FilterManager {
 public:
  /// `terms` are the run's filter ops in canonical (plan) order; every
  /// entry must be a kFilter. `adaptive` enables permuted evaluation.
  FilterManager(std::vector<plan::ChainOp> terms, bool adaptive);

  /// Refines `sel` (over tuples[0..sel->capacity())) to the tuples that
  /// pass every term, and appends each term's canonical-order input count
  /// — the scalar executor's per-filter charge basis — to `charges`.
  void Run(const storage::Tuple* tuples, TupleIdList* sel,
           std::vector<int64_t>* charges);

  size_t num_terms() const { return terms_.size(); }

  /// Current rank order (term indices, cheapest-most-selective first);
  /// exposed for tests and the microbenchmark.
  const std::vector<size_t>& order() const { return order_; }

 private:
  struct TermStats {
    double ewma_selectivity = 0.5;  // seeded from the plan estimate
    double ewma_cost_ns = 1.0;      // host ns per evaluated tuple
    int64_t batches = 0;
  };

  void RunCanonical(const storage::Tuple* tuples, TupleIdList* sel,
                    std::vector<int64_t>* charges);
  void RunPermuted(const storage::Tuple* tuples, TupleIdList* sel,
                   std::vector<int64_t>* charges);
  void Rerank();

  std::vector<plan::ChainOp> terms_;
  bool adaptive_;
  std::vector<TermStats> stats_;
  std::vector<size_t> order_;  // rank order over term indices
  // Scratch reused across batches (grow-only).
  std::vector<TupleIdList> bitmaps_;
  TupleIdList acc_;
  std::vector<const TupleIdList*> preds_;
};

}  // namespace dqsched::exec

#endif  // DQSCHED_EXEC_FILTER_MANAGER_H_
