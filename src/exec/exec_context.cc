#include "exec/exec_context.h"

// ExecContext is header-only; this file anchors the header in the build.
