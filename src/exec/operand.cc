#include "exec/operand.h"

#include "common/macros.h"

namespace dqsched::exec {

void Operand::Append(ExecContext& ctx, const storage::Tuple* data, int64_t n,
                     bool async_io) {
  DQS_CHECK_MSG(!sealed_, "append to sealed operand %s", name_.c_str());
  if (n <= 0) return;
  cardinality_ += n;
  if (spilled()) {
    ctx.temps.Append(temp_, data, n, async_io);
    return;
  }
  const int64_t bytes = n * ctx.cost->tuple_size_bytes;
  if (ctx.memory.Grant(bytes).ok()) {
    tuples_.insert(tuples_.end(), data, data + n);
    granted_tuple_bytes_ += bytes;
    return;
  }
  // Memory pressure: spill everything accumulated so far plus this batch
  // to a disk temp and release the grants.
  temp_ = ctx.temps.Create("operand_" + name_);
  if (!tuples_.empty()) {
    ctx.temps.Append(temp_, tuples_.data(),
                     static_cast<int64_t>(tuples_.size()), async_io);
    tuples_.clear();
    tuples_.shrink_to_fit();
  }
  ctx.memory.Release(granted_tuple_bytes_);
  granted_tuple_bytes_ = 0;
  ctx.temps.Append(temp_, data, n, async_io);
}

void Operand::Seal(ExecContext& ctx) {
  if (sealed_) return;
  if (spilled()) ctx.temps.Seal(temp_);
  sealed_ = true;
}

int64_t Operand::BytesToLoad(const ExecContext& ctx) const {
  if (loaded()) return 0;
  int64_t bytes = HashIndex::EstimateBytes(cardinality_);
  if (spilled()) bytes += cardinality_ * ctx.cost->tuple_size_bytes;
  return bytes;
}

Status Operand::Load(ExecContext& ctx, bool async_io) {
  DQS_CHECK_MSG(sealed_, "load of unsealed operand %s", name_.c_str());
  if (loaded()) return Status::Ok();

  if (spilled()) {
    const int64_t bytes = cardinality_ * ctx.cost->tuple_size_bytes;
    DQS_RETURN_IF_ERROR(ctx.memory.Grant(bytes));
    granted_tuple_bytes_ = bytes;
    tuples_.resize(static_cast<size_t>(cardinality_));
    SimTime ready = ctx.clock.now();
    int64_t cursor = 0;
    while (cursor < cardinality_) {
      cursor += ctx.temps.Read(temp_, cursor, tuples_.data() + cursor,
                               cardinality_ - cursor, async_io, &ready);
    }
    // The index build below needs the data; wait for the last chunk.
    ctx.clock.BusyUntil(ready);
  }

  const int64_t index_bytes = HashIndex::EstimateBytes(cardinality_);
  Status granted = ctx.memory.Grant(index_bytes);
  if (!granted.ok()) {
    // Roll back the reload so a later retry starts clean.
    if (spilled()) {
      tuples_.clear();
      tuples_.shrink_to_fit();
      ctx.memory.Release(granted_tuple_bytes_);
      granted_tuple_bytes_ = 0;
    }
    return granted;
  }
  granted_index_bytes_ = index_bytes;
  index_.Build(tuples_, field_);
  ctx.ChargeInstr(cardinality_ * ctx.cost->instr_hash_insert);
  return Status::Ok();
}

void Operand::Unload(ExecContext& ctx) {
  if (!loaded()) return;
  index_.Clear();
  ctx.memory.Release(granted_index_bytes_);
  granted_index_bytes_ = 0;
  if (spilled()) {
    // The in-memory tuples are a reloaded copy; the temp is authoritative.
    tuples_.clear();
    tuples_.shrink_to_fit();
    ctx.memory.Release(granted_tuple_bytes_);
    granted_tuple_bytes_ = 0;
  }
}

void Operand::ReleaseAll(ExecContext& ctx) {
  index_.Clear();
  tuples_.clear();
  tuples_.shrink_to_fit();
  ctx.memory.Release(granted_tuple_bytes_ + granted_index_bytes_);
  granted_tuple_bytes_ = 0;
  granted_index_bytes_ = 0;
  if (spilled()) {
    ctx.temps.Drop(temp_);
    temp_ = kInvalidId;
  }
}

void Operand::SpillToDisk(ExecContext& ctx) {
  if (spilled()) return;
  DQS_CHECK_MSG(sealed_ && !loaded(),
                "SpillToDisk of %s requires a sealed, unprobed operand",
                name_.c_str());
  temp_ = ctx.temps.Create("spill_" + name_);
  if (!tuples_.empty()) {
    ctx.temps.Append(temp_, tuples_.data(),
                     static_cast<int64_t>(tuples_.size()),
                     /*async_io=*/true);
    tuples_.clear();
    tuples_.shrink_to_fit();
  }
  ctx.temps.Seal(temp_);
  ctx.memory.Release(granted_tuple_bytes_);
  granted_tuple_bytes_ = 0;
}

Operand& OperandRegistry::Register(JoinId join, std::string name,
                                   int build_key_field) {
  DQS_CHECK_MSG(join == static_cast<JoinId>(operands_.size()),
                "operands must register in join order");
  // dqs-analyze: begin-allow(kernel-push) — registry setup, one entry per join
  operands_.push_back(
      std::make_unique<Operand>(join, std::move(name), build_key_field));
  // dqs-analyze: end-allow(kernel-push)
  return *operands_.back();
}

Operand& OperandRegistry::Get(JoinId join) {
  DQS_CHECK_MSG(join >= 0 && static_cast<size_t>(join) < operands_.size(),
                "bad join id %d", join);
  return *operands_[static_cast<size_t>(join)];
}

const Operand& OperandRegistry::Get(JoinId join) const {
  return const_cast<OperandRegistry*>(this)->Get(join);
}

}  // namespace dqsched::exec
