// Input sources for query fragments.
//
// A fragment's input is one of: a remote wrapper's tuple queue
// (QueueSource), a sealed temp relation on local disk (TempSource), or a
// materialized prefix followed by the live remainder (ConcatSource) — the
// shape a degraded pipeline chain's complement fragment CF(p) consumes
// after its materialization fragment MF(p) is stopped (paper Section 4.4).

#ifndef DQSCHED_EXEC_CHAIN_SOURCE_H_
#define DQSCHED_EXEC_CHAIN_SOURCE_H_

#include <deque>
#include <memory>
#include <utility>

#include "common/ids.h"
#include "common/sim_time.h"
#include "exec/exec_context.h"
#include "storage/tuple.h"

namespace dqsched::exec {

/// Abstract fragment input. All methods take the context so sources can
/// pump communication / charge the disk as a side effect.
class ChainSource {
 public:
  virtual ~ChainSource() = default;

  /// Result of one Pop call.
  struct PopResult {
    int64_t count = 0;
    /// True when the batch came from a materialized temp: no network
    /// receive cost, and pre-applied leading operators must be skipped.
    bool from_temp = false;
    /// Simulated time the data is available (async disk reads complete
    /// later than `now`); the executor waits on this after its CPU work.
    SimTime ready = 0;
  };

  /// Pops up to `max` tuples into `out`.
  virtual PopResult Pop(ExecContext& ctx, storage::Tuple* out,
                        int64_t max) = 0;

  /// Tuples consumable immediately (pumps arrivals first).
  virtual int64_t Available(ExecContext& ctx) = 0;

  /// True when no tuple will ever be available again.
  virtual bool Exhausted(const ExecContext& ctx) const = 0;

  /// Earliest time new input can appear when Available()==0;
  /// kSimTimeNever if exhausted (or unknowable).
  virtual SimTime NextArrival(const ExecContext& ctx) const = 0;

  /// True when NextArrival() may change as the virtual clock advances even
  /// though no tuple was delivered or consumed (temp-backed sources answer
  /// "ready now" or an in-flight completion time). The multi-query arrival
  /// cache must not memoize such values across clock advances.
  virtual bool TimeDependentArrival() const { return false; }

  /// The remote source consumed (kInvalidId for pure temp input).
  virtual SourceId remote_source() const = 0;

  /// True when the producing wrapper is suspended on a full queue (window
  /// protocol): every moment it stays suspended stretches that relation's
  /// total retrieval time.
  virtual bool Backpressured(const ExecContext& ctx) const {
    (void)ctx;
    return false;
  }
};

/// Live input from a wrapper's queue via the communication manager.
class QueueSource final : public ChainSource {
 public:
  explicit QueueSource(SourceId source) : source_(source) {}

  PopResult Pop(ExecContext& ctx, storage::Tuple* out, int64_t max) override;
  int64_t Available(ExecContext& ctx) override;
  bool Exhausted(const ExecContext& ctx) const override;
  SimTime NextArrival(const ExecContext& ctx) const override;
  SourceId remote_source() const override { return source_; }
  bool Backpressured(const ExecContext& ctx) const override;

 private:
  SourceId source_;
};

/// Input from a sealed temp relation (MF output, MA phase-1 output, or a
/// split intermediate).
///
/// With `async_io` the source double-buffers chunk reads: while the engine
/// processes transferred tuples (or other fragments), the next chunk is in
/// flight, and a chunk that has not completed yet simply means "no data
/// available until its completion time" — exactly like a remote wrapper.
/// This realizes the paper's assumption that "the I/O and CPU operations
/// for CF(p) are done concurrently (asynchronous I/O)". Synchronous mode
/// (MA) blocks the engine for every chunk instead.
class TempSource final : public ChainSource {
 public:
  TempSource(TempId temp, bool async_io) : temp_(temp), async_io_(async_io) {}

  PopResult Pop(ExecContext& ctx, storage::Tuple* out, int64_t max) override;
  int64_t Available(ExecContext& ctx) override;
  bool Exhausted(const ExecContext& ctx) const override;
  SimTime NextArrival(const ExecContext& ctx) const override;
  SourceId remote_source() const override { return kInvalidId; }
  bool TimeDependentArrival() const override { return true; }

  TempId temp() const { return temp_; }

 private:
  /// Promotes completed chunks and keeps up to two chunk reads in flight.
  void Advance(ExecContext& ctx);

  TempId temp_;
  bool async_io_;
  int64_t cursor_ = 0;
  // Async pipeline state.
  int64_t issued_upto_ = 0;  // tuples requested from the disk
  int64_t ready_upto_ = 0;   // tuples whose transfer has completed
  int64_t issues_ = 0;       // chunk reads issued (drives the ramp)
  std::deque<std::pair<int64_t, SimTime>> inflight_;  // (upto, done)
};

/// Materialized prefix then live remainder. Batches never mix origins.
class ConcatSource final : public ChainSource {
 public:
  ConcatSource(std::unique_ptr<TempSource> first,
               std::unique_ptr<QueueSource> second)
      : first_(std::move(first)), second_(std::move(second)) {}

  PopResult Pop(ExecContext& ctx, storage::Tuple* out, int64_t max) override;
  int64_t Available(ExecContext& ctx) override;
  bool Exhausted(const ExecContext& ctx) const override;
  SimTime NextArrival(const ExecContext& ctx) const override;
  SourceId remote_source() const override {
    return second_->remote_source();
  }
  bool Backpressured(const ExecContext& ctx) const override {
    return second_->Backpressured(ctx);
  }
  // Conservative: the temp prefix dominates until exhausted, and probing
  // exhaustion here would itself need the clock-independent guarantee.
  bool TimeDependentArrival() const override { return true; }

 private:
  std::unique_ptr<TempSource> first_;
  std::unique_ptr<QueueSource> second_;
};

}  // namespace dqsched::exec

#endif  // DQSCHED_EXEC_CHAIN_SOURCE_H_
