// Build-side operands of hash joins.
//
// The chain producing a join's build input terminates at an Operand — the
// paper's implicit `mat` before a blocking edge: "such a materialization
// can occur in memory or on disk depending on the available resources"
// (Section 2.2). Tuples accumulate in memory while the accountant grants
// space and spill transparently to a disk temp otherwise. When the probe
// chain opens, the operand is (re)loaded if spilled and a hash index is
// built over it; both are charged to the simulation.

#ifndef DQSCHED_EXEC_OPERAND_H_
#define DQSCHED_EXEC_OPERAND_H_

#include <memory>
#include <string>
#include <vector>

#include "common/ids.h"
#include "common/status.h"
#include "exec/exec_context.h"
#include "exec/hash_index.h"
#include "storage/tuple.h"

namespace dqsched::exec {

/// One join's materialized build input plus its (lazily built) hash index.
class Operand {
 public:
  Operand(JoinId join, std::string name, int build_key_field)
      : join_(join), name_(std::move(name)), field_(build_key_field) {}

  Operand(const Operand&) = delete;
  Operand& operator=(const Operand&) = delete;

  JoinId join() const { return join_; }
  const std::string& name() const { return name_; }
  int key_field() const { return field_; }

  /// Appends `n` tuples produced by the build chain. Grants memory per
  /// batch; the first failed grant spills everything to a disk temp and
  /// appends there from then on. Never fails.
  void Append(ExecContext& ctx, const storage::Tuple* data, int64_t n,
              bool async_io);

  /// Freezes the operand; its exact cardinality becomes authoritative.
  void Seal(ExecContext& ctx);

  bool sealed() const { return sealed_; }
  bool spilled() const { return temp_ != kInvalidId; }
  int64_t cardinality() const { return cardinality_; }
  /// Memory currently held for the raw tuples (0 when spilled/released).
  int64_t resident_bytes() const { return granted_tuple_bytes_; }
  /// Every byte this operand currently holds against the accountant
  /// (tuples + hash index). The invariant auditor balances the sum of
  /// these against MemoryAccountant::granted().
  int64_t granted_bytes() const {
    return granted_tuple_bytes_ + granted_index_bytes_;
  }

  /// Memory that must be granted before Load() can succeed: the hash index
  /// plus, when spilled, the tuples themselves.
  int64_t BytesToLoad(const ExecContext& ctx) const;

  /// Prepares the operand for probing: reads it back from disk if spilled
  /// (charged), grants memory, builds the index (charged per insert).
  /// Fails with kResourceExhausted when the grant fails; the operand is
  /// left unloaded in that case.
  Status Load(ExecContext& ctx, bool async_io);

  bool loaded() const { return index_.built(); }
  const HashIndex& index() const { return index_; }
  const std::vector<storage::Tuple>& tuples() const { return tuples_; }

  /// Undoes a Load() without losing data: drops the index (and, for a
  /// spilled operand, the reloaded tuple copy — the temp still holds
  /// everything), returning the grants. Used when opening a fragment fails
  /// partway and the operand must remain probe-able later.
  void Unload(ExecContext& ctx);

  /// Releases everything: index, in-memory tuples, disk temp. Called when
  /// the (single) probing fragment of this join closes — the operand is
  /// never needed again afterwards.
  void ReleaseAll(ExecContext& ctx);

  /// Evicts a sealed, resident, not-yet-probed operand to a disk temp,
  /// returning its memory grant. Used by the dynamic optimizer to relieve
  /// memory pressure (the operand reloads — with I/O charges — when its
  /// prober opens). No-op if already spilled.
  void SpillToDisk(ExecContext& ctx);

 private:
  JoinId join_;
  std::string name_;
  int field_;

  std::vector<storage::Tuple> tuples_;
  HashIndex index_;
  TempId temp_ = kInvalidId;
  bool sealed_ = false;
  int64_t cardinality_ = 0;
  int64_t granted_tuple_bytes_ = 0;
  int64_t granted_index_bytes_ = 0;
};

/// The operands of every join of one execution, indexed by JoinId.
class OperandRegistry {
 public:
  explicit OperandRegistry(int num_joins) {
    operands_.reserve(static_cast<size_t>(num_joins));
  }

  /// Registers the operand for the next join id; must be called in order.
  Operand& Register(JoinId join, std::string name, int build_key_field);

  Operand& Get(JoinId join);
  const Operand& Get(JoinId join) const;
  int count() const { return static_cast<int>(operands_.size()); }

 private:
  std::vector<std::unique_ptr<Operand>> operands_;
};

}  // namespace dqsched::exec

#endif  // DQSCHED_EXEC_OPERAND_H_
