#include "exec/filter_manager.h"

#include <algorithm>

#include "common/host_clock.h"
#include "common/macros.h"

namespace dqsched::exec {
namespace {

// EWMA smoothing for observed selectivity and per-tuple cost. Heavier
// weight on history keeps the order stable under noisy small batches.
constexpr double kEwmaAlpha = 0.3;

}  // namespace

FilterManager::FilterManager(std::vector<plan::ChainOp> terms, bool adaptive)
    : terms_(std::move(terms)), adaptive_(adaptive) {
  stats_.resize(terms_.size());
  order_.resize(terms_.size());
  bitmaps_.resize(terms_.size());
  for (size_t t = 0; t < terms_.size(); ++t) {
    DQS_CHECK_MSG(terms_[t].kind == plan::ChainOpKind::kFilter,
                  "non-filter op %zu handed to FilterManager", t);
    stats_[t].ewma_selectivity = terms_[t].selectivity;
    order_[t] = t;
  }
  Rerank();
}

void FilterManager::Rerank() {
  std::stable_sort(order_.begin(), order_.end(),
                   [&](size_t a, size_t b) {
                     const double ra =
                         stats_[a].ewma_selectivity * stats_[a].ewma_cost_ns;
                     const double rb =
                         stats_[b].ewma_selectivity * stats_[b].ewma_cost_ns;
                     if (ra != rb) return ra < rb;
                     return a < b;  // canonical order breaks ties
                   });
}

void FilterManager::Run(const storage::Tuple* tuples, TupleIdList* sel,
                        std::vector<int64_t>* charges) {
  if (terms_.empty()) return;
  if (!adaptive_ || terms_.size() == 1 || sel->Empty()) {
    RunCanonical(tuples, sel, charges);
    return;
  }
  RunPermuted(tuples, sel, charges);
}

void FilterManager::RunCanonical(const storage::Tuple* tuples,
                                 TupleIdList* sel,
                                 std::vector<int64_t>* charges) {
  for (const plan::ChainOp& term : terms_) {
    charges->push_back(sel->Count());  // dqs-analyze: allow(kernel-push) per-term
    sel->Refine([&](uint32_t id) {
      return storage::FilterPasses(tuples[id].rowid, term.node,
                                   term.selectivity);
    });
  }
}

void FilterManager::RunPermuted(const storage::Tuple* tuples,
                                TupleIdList* sel,
                                std::vector<int64_t>* charges) {
  const uint32_t cap = sel->capacity();
  const size_t n = terms_.size();
  const size_t words = sel->NumWords();
  for (size_t t = 0; t < n; ++t) bitmaps_[t].Resize(cap);

  for (size_t r = 0; r < n; ++r) {
    const size_t t = order_[r];
    // Word-skip mask: the AND of already-evaluated terms that canonically
    // precede t. Bits dead in that AND cannot survive any prefix AND that
    // includes term t, so skipping them never changes a canonical count.
    preds_.clear();
    for (size_t e = 0; e < r; ++e) {
      if (order_[e] < t) {
        preds_.push_back(&bitmaps_[order_[e]]);  // dqs-analyze: allow(kernel-push) per-term
      }
    }
    const plan::ChainOp& term = terms_[t];
    TupleIdList::Word* out_words = bitmaps_[t].mutable_words();
    int64_t evaluated = 0;
    int64_t passed = 0;
    const auto start = HostClock::Now();
    for (size_t w = 0; w < words; ++w) {
      TupleIdList::Word m = sel->words()[w];
      for (const TupleIdList* p : preds_) m &= p->words()[w];
      if (m == 0) {
        out_words[w] = 0;
        continue;
      }
      const uint32_t base =
          static_cast<uint32_t>(w) * TupleIdList::kBitsPerWord;
      TupleIdList::Word out = 0;
      while (m != 0) {
        const uint32_t bit = TupleIdList::CountTrailingZeros(m);
        m &= m - 1;
        ++evaluated;
        if (storage::FilterPasses(tuples[base + bit].rowid, term.node,
                                  term.selectivity)) {
          out |= TupleIdList::Word{1} << bit;
          ++passed;
        }
      }
      out_words[w] = out;
    }
    const int64_t elapsed_ns = HostClock::NanosSince(start);
    bitmaps_[t].RecountAfterWordEdit();

    if (evaluated > 0) {
      const double obs_sel =
          static_cast<double>(passed) / static_cast<double>(evaluated);
      const double obs_cost = static_cast<double>(elapsed_ns) /
                              static_cast<double>(evaluated);
      TermStats& st = stats_[t];
      st.ewma_selectivity =
          kEwmaAlpha * obs_sel + (1.0 - kEwmaAlpha) * st.ewma_selectivity;
      st.ewma_cost_ns = st.batches == 0
                            ? obs_cost
                            : kEwmaAlpha * obs_cost +
                                  (1.0 - kEwmaAlpha) * st.ewma_cost_ns;
      ++st.batches;
    }
  }

  // Canonical charges: popcounts of the canonical-order prefix ANDs.
  acc_.Resize(cap);
  acc_.AssignFrom(*sel);
  for (size_t t = 0; t < n; ++t) {
    charges->push_back(acc_.Count());  // dqs-analyze: allow(kernel-push) per-term
    acc_.IntersectWith(bitmaps_[t]);
  }
  sel->AssignFrom(acc_);

  Rerank();
}

}  // namespace dqsched::exec
