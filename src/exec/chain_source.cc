#include "exec/chain_source.h"

#include <algorithm>

namespace dqsched::exec {

ChainSource::PopResult QueueSource::Pop(ExecContext& ctx, storage::Tuple* out,
                                        int64_t max) {
  PopResult r;
  r.count = ctx.comm.Pop(source_, ctx.clock.now(), out, max);
  r.from_temp = false;
  r.ready = ctx.clock.now();
  return r;
}

int64_t QueueSource::Available(ExecContext& ctx) {
  return ctx.comm.Available(source_, ctx.clock.now());
}

bool QueueSource::Exhausted(const ExecContext& ctx) const {
  return ctx.comm.SourceExhausted(source_);
}

SimTime QueueSource::NextArrival(const ExecContext& ctx) const {
  return ctx.comm.NextArrival(source_);
}

bool QueueSource::Backpressured(const ExecContext& ctx) const {
  return !ctx.comm.wrapper(source_).Exhausted() &&
         ctx.comm.queue(source_).Full();
}

void TempSource::Advance(ExecContext& ctx) {
  const int64_t card = ctx.temps.Cardinality(temp_);
  if (ctx.temps.FitsIoCache(temp_)) {
    // Never left the I/O cache; everything is ready for free.
    ready_upto_ = issued_upto_ = card;
    return;
  }
  const SimTime now = ctx.clock.now();
  while (!inflight_.empty() && inflight_.front().second <= now) {
    ready_upto_ = inflight_.front().first;
    inflight_.pop_front();
  }
  // Double-buffer with a slow-start ramp: small first chunks give the
  // consumer data after ~one page transfer instead of a full chunk's
  // latency; later chunks grow to the configured size so positioning
  // stays amortized on long scans.
  while (static_cast<int64_t>(inflight_.size()) < 2 && issued_upto_ < card) {
    const int64_t ramp_pages =
        std::min<int64_t>(ctx.cost->disk_chunk_pages,
                          int64_t{4} << std::min<int64_t>(issues_, 8));
    const int64_t chunk_tuples = ramp_pages * ctx.cost->TuplesPerPage();
    const int64_t take = std::min(chunk_tuples, card - issued_upto_);
    const SimTime done = ctx.temps.IssueRead(temp_, take);
    issued_upto_ += take;
    ++issues_;
    // dqs-analyze: begin-allow(kernel-push) — per-read-request bookkeeping
    inflight_.emplace_back(issued_upto_, done);
    // dqs-analyze: end-allow(kernel-push)
  }
}

ChainSource::PopResult TempSource::Pop(ExecContext& ctx, storage::Tuple* out,
                                       int64_t max) {
  PopResult r;
  r.from_temp = true;
  r.ready = ctx.clock.now();
  if (!async_io_) {
    r.count = ctx.temps.Read(temp_, cursor_, out, max, /*async_io=*/false,
                             &r.ready);
    cursor_ += r.count;
    return r;
  }
  Advance(ctx);
  r.count = std::min(max, ready_upto_ - cursor_);
  if (r.count > 0) {
    ctx.temps.Copy(temp_, cursor_, out, r.count);
    cursor_ += r.count;
  }
  return r;
}

int64_t TempSource::Available(ExecContext& ctx) {
  if (!async_io_) return ctx.temps.Cardinality(temp_) - cursor_;
  Advance(ctx);
  return ready_upto_ - cursor_;
}

bool TempSource::Exhausted(const ExecContext& ctx) const {
  return cursor_ >= ctx.temps.Cardinality(temp_);
}

SimTime TempSource::NextArrival(const ExecContext& ctx) const {
  if (Exhausted(ctx)) return kSimTimeNever;
  if (!async_io_ || ready_upto_ > cursor_) return ctx.clock.now();
  // Waiting on the chunk in flight.
  if (!inflight_.empty()) return inflight_.front().second;
  return ctx.clock.now();  // nothing issued yet; Available() will issue
}

ChainSource::PopResult ConcatSource::Pop(ExecContext& ctx,
                                         storage::Tuple* out, int64_t max) {
  if (!first_->Exhausted(ctx)) return first_->Pop(ctx, out, max);
  return second_->Pop(ctx, out, max);
}

int64_t ConcatSource::Available(ExecContext& ctx) {
  if (!first_->Exhausted(ctx)) return first_->Available(ctx);
  return second_->Available(ctx);
}

bool ConcatSource::Exhausted(const ExecContext& ctx) const {
  return first_->Exhausted(ctx) && second_->Exhausted(ctx);
}

SimTime ConcatSource::NextArrival(const ExecContext& ctx) const {
  if (!first_->Exhausted(ctx)) return first_->NextArrival(ctx);
  return second_->NextArrival(ctx);
}

}  // namespace dqsched::exec
