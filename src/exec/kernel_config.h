// Kernel selection knobs, plumbed from the mediator/multi-query configs
// down into every FragmentSpec. Split out of chain_executor.h so config
// structs in src/core can name it without pulling in the executor.

#ifndef DQSCHED_EXEC_KERNEL_CONFIG_H_
#define DQSCHED_EXEC_KERNEL_CONFIG_H_

namespace dqsched::exec {

/// Which operator kernels a fragment runs. Both produce byte-identical
/// simulated metrics (DESIGN §10's determinism contract); the choice only
/// moves host wall time.
struct KernelConfig {
  /// Tuple-at-a-time reference kernels (the pre-vectorization executor,
  /// kept as the equivalence oracle and for A/B benchmarking).
  bool scalar = false;
  /// Allow the FilterManager to permute multi-term filter runs by observed
  /// selectivity×cost. Off forces canonical-order evaluation.
  bool adaptive_filters = true;
};

}  // namespace dqsched::exec

#endif  // DQSCHED_EXEC_KERNEL_CONFIG_H_
