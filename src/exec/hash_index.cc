#include "exec/hash_index.h"

#include "common/macros.h"

namespace dqsched::exec {

uint64_t HashIndex::SlotCountFor(int64_t n) {
  // Load factor <= 0.5, minimum 16 slots, power of two.
  uint64_t want = static_cast<uint64_t>(n < 8 ? 8 : n) * 2;
  uint64_t slots = 16;
  while (slots < want) slots <<= 1;
  return slots;
}

int64_t HashIndex::EstimateBytes(int64_t n) {
  return static_cast<int64_t>(SlotCountFor(n) * sizeof(Slot));
}

void HashIndex::Build(const std::vector<storage::Tuple>& tuples, int field) {
  DQS_CHECK_MSG(field >= 0 && field < storage::kTupleKeyFields,
                "bad key field %d", field);
  DQS_CHECK_MSG(tuples.size() < (uint64_t{1} << 31),
                "hash index capped at 2^31 entries (32-bit slot index)");
  slots_.assign(SlotCountFor(static_cast<int64_t>(tuples.size())), Slot{});
  const uint64_t mask = slots_.size() - 1;
  for (size_t i = 0; i < tuples.size(); ++i) {
    const int64_t key = tuples[i].keys[static_cast<size_t>(field)];
    uint64_t pos = storage::Mix64(static_cast<uint64_t>(key)) & mask;
    // The insertion walk passes every earlier entry of its run, so the
    // key's first occurrence (if any) is seen on the way to the empty
    // slot; its `count` accumulates the duplicate total the vectorized
    // probe's count pass reads in O(1).
    uint64_t first = kNoMatch;
    while (slots_[pos].index >= 0) {
      if (first == kNoMatch && slots_[pos].key == key) first = pos;
      pos = (pos + 1) & mask;
    }
    slots_[pos].key = key;
    slots_[pos].index = static_cast<int32_t>(i);
    if (first == kNoMatch) {
      slots_[pos].count = 1;
    } else {
      ++slots_[first].count;
    }
  }
  entries_ = static_cast<int64_t>(tuples.size());
  built_ = true;
}

}  // namespace dqsched::exec
