#include "exec/hash_index.h"

#include "common/macros.h"

namespace dqsched::exec {

uint64_t HashIndex::SlotCountFor(int64_t n) {
  // Load factor <= 0.5, minimum 16 slots, power of two.
  uint64_t want = static_cast<uint64_t>(n < 8 ? 8 : n) * 2;
  uint64_t slots = 16;
  while (slots < want) slots <<= 1;
  return slots;
}

int64_t HashIndex::EstimateBytes(int64_t n) {
  return static_cast<int64_t>(SlotCountFor(n) * sizeof(Slot));
}

void HashIndex::Build(const std::vector<storage::Tuple>& tuples, int field) {
  DQS_CHECK_MSG(field >= 0 && field < storage::kTupleKeyFields,
                "bad key field %d", field);
  slots_.assign(SlotCountFor(static_cast<int64_t>(tuples.size())), Slot{});
  const uint64_t mask = slots_.size() - 1;
  for (size_t i = 0; i < tuples.size(); ++i) {
    const int64_t key = tuples[i].keys[static_cast<size_t>(field)];
    uint64_t pos = storage::Mix64(static_cast<uint64_t>(key)) & mask;
    while (slots_[pos].index >= 0) pos = (pos + 1) & mask;
    slots_[pos].key = key;
    slots_[pos].index = static_cast<int64_t>(i);
  }
  entries_ = static_cast<int64_t>(tuples.size());
  built_ = true;
}

}  // namespace dqsched::exec
