// Query-fragment execution.
//
// A *query fragment* (paper Section 3.3) is either a pipeline chain, a
// materialization fragment MF(p), or a complement fragment CF(p)/split
// remainder. All of them execute the same way: pop a batch from the input
// source, push it through the pipelined operators, deliver to the sink,
// charging the simulation for every step. The dynamic query processor
// interleaves ProcessBatch calls across fragments per the scheduling plan.

#ifndef DQSCHED_EXEC_CHAIN_EXECUTOR_H_
#define DQSCHED_EXEC_CHAIN_EXECUTOR_H_

#include <memory>
#include <string>
#include <vector>

#include "common/ids.h"
#include "common/status.h"
#include "exec/chain_source.h"
#include "exec/exec_context.h"
#include "exec/filter_manager.h"
#include "exec/kernel_config.h"
#include "exec/operand.h"
#include "exec/tuple_id_list.h"
#include "plan/compiled_plan.h"

namespace dqsched::exec {

/// Where a fragment's output goes.
enum class SinkKind {
  kOperand,  // build input of a join (blocking edge)
  kTemp,     // a temp relation (MF(p), MA phase 1, split intermediate)
  kResult,   // the query result
};

/// Static description of one executable fragment.
struct FragmentSpec {
  std::string name;
  /// Pipelined operators applied to each input tuple.
  std::vector<plan::ChainOp> ops;
  /// Leading ops already applied to materialized input batches (a CF whose
  /// MF ran the chain's leading filters). Batches flagged from_temp start
  /// at ops[temp_skip_ops].
  int temp_skip_ops = 0;
  SinkKind sink = SinkKind::kResult;
  JoinId sink_join = kInvalidId;  // kOperand
  TempId sink_temp = kInvalidId;  // kTemp
  /// The pipeline chain this fragment realizes (metrics/provenance);
  /// kInvalidId for MA phase-1 materializations.
  ChainId origin_chain = kInvalidId;
  /// Asynchronous disk I/O for this fragment's temp writes/reads.
  bool async_io = true;
  /// Operator kernel selection (vectorized vs scalar, filter adaptivity).
  KernelConfig kernels;
};

/// Per-fragment execution statistics.
struct FragmentStats {
  int64_t consumed = 0;       // input tuples
  int64_t consumed_live = 0;  // subset of `consumed` popped from a wrapper
                              // queue (vs replayed from a temp); the
                              // invariant auditor's per-source conservation
                              // law sums these against queue pops
  int64_t produced = 0;       // tuples delivered to the sink
  int64_t batches = 0;
};

/// Executable fragment: spec + source + sinks, plus open/close lifecycle.
class FragmentRuntime {
 public:
  /// `operands` and `result` must outlive the runtime.
  FragmentRuntime(FragmentSpec spec, std::unique_ptr<ChainSource> source,
                  OperandRegistry* operands, ResultCollector* result)
      : spec_(std::move(spec)),
        source_(std::move(source)),
        operands_(operands),
        result_(result) {}

  FragmentRuntime(const FragmentRuntime&) = delete;
  FragmentRuntime& operator=(const FragmentRuntime&) = delete;

  const FragmentSpec& spec() const { return spec_; }
  const std::string& name() const { return spec_.name; }

  /// Memory that must be granted before the fragment can run: its probe
  /// operands' indexes (plus reloads if spilled). 0 once opened.
  int64_t BytesToOpen(const ExecContext& ctx) const;

  /// Loads and indexes every probed operand. Idempotent. Fails with
  /// kResourceExhausted if the memory grant fails (the caller — DQS/DQO —
  /// must then revise the plan, paper Section 4.2).
  Status Open(ExecContext& ctx);
  bool opened() const { return opened_; }

  /// Processes up to `max_tuples` input tuples. Returns the count consumed
  /// (0 when no input is ready). Opens on first use.
  Result<int64_t> ProcessBatch(ExecContext& ctx, int64_t max_tuples);

  /// True when the input is exhausted and everything was consumed.
  bool Finished(const ExecContext& ctx) const;

  /// Seals the sink, releases probed operands, marks the fragment closed.
  void Close(ExecContext& ctx);
  bool closed() const { return closed_; }

  /// Early termination (an MF(p) stopped because p became schedulable):
  /// seals whatever was materialized so far and closes, without requiring
  /// the input to be exhausted. Unconsumed input stays in the queue for
  /// the complement fragment.
  void Stop(ExecContext& ctx);

  /// Cancellation: marks the fragment closed without sealing its sink or
  /// requiring exhaustion. The caller (ExecutionState::Cancel) releases
  /// operand grants registry-wide and drops the query's temps; the husk
  /// must never execute afterwards.
  void Abort() { closed_ = true; }

  /// Tuples consumable immediately.
  int64_t Available(ExecContext& ctx) { return source_->Available(ctx); }
  /// The producing wrapper is suspended on a full queue.
  bool Backpressured(const ExecContext& ctx) const {
    return source_->Backpressured(ctx);
  }
  /// Earliest time new input can appear.
  SimTime NextArrival(const ExecContext& ctx) const {
    return source_->NextArrival(ctx);
  }
  /// See ChainSource::TimeDependentArrival().
  bool TimeDependentArrival() const { return source_->TimeDependentArrival(); }

  ChainSource& source() { return *source_; }
  const ChainSource& source() const { return *source_; }
  const FragmentStats& stats() const { return stats_; }

  /// Relinquishes the input source so a plan revision can hand it to a
  /// replacement fragment. Only legal before any consumption; the runtime
  /// is unusable afterwards.
  std::unique_ptr<ChainSource> TakeSource();

 private:
  /// The pre-vectorization tuple-at-a-time kernels, kept verbatim as the
  /// equivalence oracle (spec_.kernels.scalar) and the benchmark baseline.
  Result<int64_t> ProcessBatchScalar(ExecContext& ctx,
                                     const ChainSource::PopResult& pop);
  /// Batch-at-a-time kernels: selection-vector filters, two-pass probes,
  /// bulk sink delivery. Simulated charges are byte-identical to scalar.
  Result<int64_t> ProcessBatchVectorized(ExecContext& ctx,
                                         const ChainSource::PopResult& pop);
  /// The FilterManager for the run of `len` consecutive filter ops
  /// starting at ops[start]; created on first use, persistent across
  /// batches so its selectivity/cost observations accumulate.
  FilterManager& FilterRunAt(size_t start, size_t len);

  FragmentSpec spec_;
  std::unique_ptr<ChainSource> source_;
  OperandRegistry* operands_;
  ResultCollector* result_;
  bool opened_ = false;
  bool closed_ = false;
  FragmentStats stats_;
  /// Scratch buffers reused across batches. The work buffers are grow-only
  /// and carry stale tails; kernels track logical counts explicitly.
  std::vector<storage::Tuple> in_buf_;
  std::vector<storage::Tuple> work_a_;
  std::vector<storage::Tuple> work_b_;
  /// Vectorized-kernel scratch (grow-only, reused across batches).
  TupleIdList sel_;
  std::vector<uint32_t> sel_ids_;
  std::vector<int64_t> probe_keys_;
  std::vector<uint64_t> probe_homes_;
  std::vector<uint32_t> match_counts_;
  std::vector<int64_t> filter_charges_;
  /// One FilterManager per filter-run start index (lazily created).
  std::vector<std::unique_ptr<FilterManager>> filter_runs_;
};

}  // namespace dqsched::exec

#endif  // DQSCHED_EXEC_CHAIN_EXECUTOR_H_
