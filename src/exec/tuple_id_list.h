// Selection vector for batch-at-a-time kernels.
//
// A TupleIdList marks which tuples of a batch are still alive after a
// filter, as a bit vector of one bit per input position. Operators refine
// the list in place instead of materializing intermediate tuple buffers;
// only the sink (or a probe's expansion pass) ever copies tuples. Two fast
// paths matter: a *full* list (every bit set — the common case for
// filterless chains) iterates densely without reading words, and a sparse
// list skips whole zero words. Ids are always visited in ascending order,
// which is what keeps vectorized output byte-identical to the scalar
// kernels' tuple-at-a-time order.

#ifndef DQSCHED_EXEC_TUPLE_ID_LIST_H_
#define DQSCHED_EXEC_TUPLE_ID_LIST_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/macros.h"

namespace dqsched::exec {

/// Bit-vector backed list of tuple ids in [0, capacity).
class TupleIdList {
 public:
  using Word = uint64_t;
  static constexpr uint32_t kBitsPerWord = 64;

  /// Sets the universe to [0, capacity) and clears the list. Backing
  /// storage is grow-only, so per-batch reuse never reallocates.
  void Resize(uint32_t capacity) {
    capacity_ = capacity;
    const size_t words = NumWords();
    if (words_.size() < words) words_.resize(words);
    Clear();
  }

  uint32_t capacity() const { return capacity_; }
  uint32_t Count() const { return count_; }
  bool Empty() const { return count_ == 0; }
  bool Full() const { return count_ == capacity_; }

  void Clear() {
    std::fill(words_.begin(), words_.begin() + NumWords(), Word{0});
    count_ = 0;
  }

  /// Selects every id in the universe (sets the partial last word exactly).
  void AddAll() {
    const size_t words = NumWords();
    std::fill(words_.begin(), words_.begin() + words, ~Word{0});
    if (capacity_ % kBitsPerWord != 0 && words > 0) {
      words_[words - 1] = (Word{1} << (capacity_ % kBitsPerWord)) - 1;
    }
    count_ = capacity_;
  }

  void Add(uint32_t id) {
    DQS_CHECK_MSG(id < capacity_, "tuple id %u out of range %u", id,
                  capacity_);
    Word& w = words_[id / kBitsPerWord];
    const Word bit = Word{1} << (id % kBitsPerWord);
    count_ += (w & bit) == 0;
    w |= bit;
  }

  bool Contains(uint32_t id) const {
    DQS_CHECK_MSG(id < capacity_, "tuple id %u out of range %u", id,
                  capacity_);
    return (words_[id / kBitsPerWord] >> (id % kBitsPerWord)) & 1;
  }

  /// Keeps only ids where `pred(id)` holds. A full list refines densely
  /// (no bit reads); a partial list walks set bits, skipping zero words.
  template <typename Pred>
  void Refine(Pred&& pred) {
    const size_t words = NumWords();
    uint32_t count = 0;
    if (Full()) {
      for (size_t w = 0; w < words; ++w) {
        Word in = words_[w];
        Word out = 0;
        const uint32_t base = static_cast<uint32_t>(w) * kBitsPerWord;
        while (in != 0) {
          const uint32_t bit = CountTrailingZeros(in);
          in &= in - 1;
          if (pred(base + bit)) out |= Word{1} << bit;
        }
        words_[w] = out;
        count += PopCount(out);
      }
    } else {
      for (size_t w = 0; w < words; ++w) {
        Word in = words_[w];
        if (in == 0) continue;
        Word out = 0;
        const uint32_t base = static_cast<uint32_t>(w) * kBitsPerWord;
        while (in != 0) {
          const uint32_t bit = CountTrailingZeros(in);
          in &= in - 1;
          if (pred(base + bit)) out |= Word{1} << bit;
        }
        words_[w] = out;
        count += PopCount(out);
      }
    }
    count_ = count;
  }

  /// Intersects with `other` (same capacity required).
  void IntersectWith(const TupleIdList& other) {
    DQS_CHECK_MSG(capacity_ == other.capacity_,
                  "intersect of mismatched lists (%u vs %u)", capacity_,
                  other.capacity_);
    const size_t words = NumWords();
    uint32_t count = 0;
    for (size_t w = 0; w < words; ++w) {
      words_[w] &= other.words_[w];
      count += PopCount(words_[w]);
    }
    count_ = count;
  }

  /// Copies `other`'s contents (capacities must match).
  void AssignFrom(const TupleIdList& other) {
    DQS_CHECK_MSG(capacity_ == other.capacity_,
                  "assign from mismatched list (%u vs %u)", capacity_,
                  other.capacity_);
    std::copy(other.words_.begin(), other.words_.begin() + NumWords(),
              words_.begin());
    count_ = other.count_;
  }

  /// Invokes fn(id) for every selected id, ascending.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    const size_t words = NumWords();
    for (size_t w = 0; w < words; ++w) {
      Word bits = words_[w];
      if (bits == 0) continue;
      const uint32_t base = static_cast<uint32_t>(w) * kBitsPerWord;
      while (bits != 0) {
        fn(base + CountTrailingZeros(bits));
        bits &= bits - 1;
      }
    }
  }

  /// Writes the selected ids (ascending) into `out`; returns the count.
  /// `out` must hold at least Count() entries.
  uint32_t Materialize(uint32_t* out) const {
    uint32_t n = 0;
    ForEach([&](uint32_t id) { out[n++] = id; });
    return n;
  }

  size_t NumWords() const {
    return (static_cast<size_t>(capacity_) + kBitsPerWord - 1) / kBitsPerWord;
  }
  const Word* words() const { return words_.data(); }
  Word* mutable_words() { return words_.data(); }

  static uint32_t PopCount(Word w) {
    return static_cast<uint32_t>(__builtin_popcountll(w));
  }
  static uint32_t CountTrailingZeros(Word w) {
    return static_cast<uint32_t>(__builtin_ctzll(w));
  }

  /// Recomputes count_ after direct word manipulation via mutable_words().
  void RecountAfterWordEdit() {
    const size_t words = NumWords();
    uint32_t count = 0;
    for (size_t w = 0; w < words; ++w) count += PopCount(words_[w]);
    count_ = count;
  }

 private:
  std::vector<Word> words_;
  uint32_t capacity_ = 0;
  uint32_t count_ = 0;
};

}  // namespace dqsched::exec

#endif  // DQSCHED_EXEC_TUPLE_ID_LIST_H_
