// The per-execution context: virtual clock, simulated devices, the
// communication manager, temp store, memory accountant, and the result
// collector. One ExecContext per strategy run; everything an operator or
// scheduler touches at runtime hangs off this object.

#ifndef DQSCHED_EXEC_EXEC_CONTEXT_H_
#define DQSCHED_EXEC_EXEC_CONTEXT_H_

#include <cstdint>

#include "comm/comm_manager.h"
#include "sim/cost_model.h"
#include "sim/disk.h"
#include "sim/network.h"
#include "sim/sim_clock.h"
#include "storage/memory_accountant.h"
#include "storage/temp_store.h"
#include "storage/tuple.h"

namespace dqsched::exec {

/// Accumulates the query result (count + order-independent checksum; the
/// simulator does not retain result tuples).
class ResultCollector {
 public:
  void Add(const storage::Tuple& t) {
    checksum_.Add(t);  // dqs-analyze: allow(kernel-push) — the delivery primitive
  }

  /// Bulk sink delivery: folds a whole span into the checksum. This is the
  /// blessed expansion helper the kernel-push lint rule points at — kernels
  /// hand over spans; only this helper walks tuples one at a time.
  void AddBatch(const storage::Tuple* data, int64_t n) {
    // dqs-analyze: begin-allow(kernel-push)
    for (int64_t i = 0; i < n; ++i) checksum_.Add(data[i]);
    // dqs-analyze: end-allow(kernel-push)
  }
  /// Restores a cached result digest (a result-cache hit answers the
  /// whole query without producing tuples).
  void AdoptCached(int64_t count, uint64_t sum) {
    checksum_.Adopt(sum, count);
  }

  int64_t count() const { return checksum_.count(); }
  const storage::ResultChecksum& checksum() const { return checksum_; }

 private:
  storage::ResultChecksum checksum_;
};

/// Everything one execution needs, wired together.
class ExecContext {
 public:
  ExecContext(const sim::CostModel* cost_model,
              const comm::CommConfig& comm_config, int64_t memory_budget)
      : cost(cost_model),
        disk(cost_model),
        net(cost_model),
        comm(comm_config),
        temps(cost_model, &disk, &clock),
        memory(memory_budget) {}

  ExecContext(const ExecContext&) = delete;
  ExecContext& operator=(const ExecContext&) = delete;

  /// Charges `instr` CPU instructions to the virtual clock.
  void ChargeInstr(int64_t instr) { clock.Advance(cost->InstrTime(instr)); }

  /// Delivers all wrapper production due by now.
  void Pump() { comm.PumpAll(clock.now()); }

  const sim::CostModel* cost;
  sim::SimClock clock;
  sim::SimDisk disk;
  sim::NetworkModel net;
  comm::CommManager comm;
  storage::TempStore temps;
  storage::MemoryAccountant memory;
  ResultCollector result;
};

}  // namespace dqsched::exec

#endif  // DQSCHED_EXEC_EXEC_CONTEXT_H_
