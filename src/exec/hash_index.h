// Open-addressing hash index over a build operand's tuples.
//
// Built once when a probe chain opens, probed many times, never mutated
// afterwards. Duplicate keys are stored as separate entries; a probe walks
// the run of its home slot collecting every match (linear probing keeps
// equal keys clustered, so lookups touch a contiguous slot range).

#ifndef DQSCHED_EXEC_HASH_INDEX_H_
#define DQSCHED_EXEC_HASH_INDEX_H_

#include <cstdint>
#include <vector>

#include "sim/cost_model.h"
#include "storage/tuple.h"

namespace dqsched::exec {

/// Maps int64 keys to indexes into the operand's tuple vector.
class HashIndex {
 public:
  HashIndex() = default;

  /// Builds the index over `tuples` keyed on keys[field]. Any previous
  /// content is discarded.
  void Build(const std::vector<storage::Tuple>& tuples, int field);

  /// Invokes fn(size_t index) for every entry whose key equals `key`.
  template <typename Fn>
  void ForEachMatch(int64_t key, Fn&& fn) const {
    if (slots_.empty()) return;
    const uint64_t mask = slots_.size() - 1;
    uint64_t pos = storage::Mix64(static_cast<uint64_t>(key)) & mask;
    while (slots_[pos].index >= 0) {
      if (slots_[pos].key == key) fn(static_cast<size_t>(slots_[pos].index));
      pos = (pos + 1) & mask;
    }
  }

  /// Hints the cache to load `key`'s home slot. Issue it one probe ahead
  /// of ForEachMatch so the slot line is resident when the walk starts.
  void Prefetch(int64_t key) const {
#if defined(__GNUC__) || defined(__clang__)
    if (slots_.empty()) return;
    const uint64_t mask = slots_.size() - 1;
    __builtin_prefetch(
        &slots_[storage::Mix64(static_cast<uint64_t>(key)) & mask]);
#else
    (void)key;
#endif
  }

  /// `key`'s home slot position — the hash half of a probe, split out so a
  /// vectorized kernel can hash a whole batch (issuing prefetches) before
  /// walking any run. Only valid while the index is built and non-empty.
  uint64_t HomeSlot(int64_t key) const {
    return storage::Mix64(static_cast<uint64_t>(key)) & (slots_.size() - 1);
  }

  /// Hints the cache to load slot `pos` (a HomeSlot result).
  void PrefetchSlot(uint64_t pos) const {
#if defined(__GNUC__) || defined(__clang__)
    __builtin_prefetch(&slots_[pos]);
#else
    (void)pos;
#endif
  }

  /// No-match sentinel for FindFirstMatchFrom.
  static constexpr uint64_t kNoMatch = ~uint64_t{0};

  /// Walks the run from `pos` (key's HomeSlot) and returns the position of
  /// the first entry matching `key`, or kNoMatch. The hash+count pass of a
  /// two-pass vectorized probe stops here: the first occurrence's slot
  /// carries the build-time duplicate count, so the pass never walks past
  /// the first hit.
  uint64_t FindFirstMatchFrom(uint64_t pos, int64_t key) const {
    const uint64_t mask = slots_.size() - 1;
    while (slots_[pos].index >= 0) {
      if (slots_[pos].key == key) return pos;
      pos = (pos + 1) & mask;
    }
    return kNoMatch;
  }

  /// Number of entries sharing the key of the entry at `pos`. Only valid
  /// when `pos` is a FindFirstMatchFrom result (the first occurrence of
  /// its key — later duplicates carry 0).
  uint32_t MatchCountAt(uint64_t pos) const { return slots_[pos].count; }

  /// Invokes fn(size_t index) for exactly `n` matches of `key`, walking
  /// the run from `pos` (a FindFirstMatchFrom result) in the same order as
  /// ForEachMatch and stopping as soon as the n-th match is collected.
  template <typename Fn>
  void ForEachMatchFromN(uint64_t pos, int64_t key, uint32_t n,
                         Fn&& fn) const {
    const uint64_t mask = slots_.size() - 1;
    while (n > 0) {
      if (slots_[pos].key == key && slots_[pos].index >= 0) {
        fn(static_cast<size_t>(slots_[pos].index));
        --n;
      }
      pos = (pos + 1) & mask;
    }
  }

  int64_t entry_count() const { return entries_; }
  bool built() const { return built_; }

  /// Bytes this index occupies (matches EstimateBytes for the same n).
  int64_t AllocatedBytes() const {
    return static_cast<int64_t>(slots_.size() * sizeof(Slot));
  }

  /// Memory an index over `n` entries will occupy — the quantity granted
  /// from the accountant before building. Consistent with
  /// CostModel::hash_index_entry_bytes (2x slots at 16 bytes).
  static int64_t EstimateBytes(int64_t n);

  void Clear() {
    slots_.clear();
    slots_.shrink_to_fit();
    entries_ = 0;
    built_ = false;
  }

 private:
  struct Slot {
    int64_t key = 0;
    int32_t index = -1;   // -1 = empty
    uint32_t count = 0;   // duplicate count, on the key's first occurrence
  };
  static_assert(sizeof(Slot) == 16, "slot layout drives memory accounting");

  static uint64_t SlotCountFor(int64_t n);

  std::vector<Slot> slots_;
  int64_t entries_ = 0;
  bool built_ = false;
};

}  // namespace dqsched::exec

#endif  // DQSCHED_EXEC_HASH_INDEX_H_
