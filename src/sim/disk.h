// Simulated local disk at the mediator.
//
// Model: a single server (per Table 1, one local disk) with a busy-until
// queue. Transfers within one stream are sequential and cost transfer time
// only; switching streams costs one positioning (seek + rotational latency).
// Temp relations are read/written in multi-page chunks (CostModel::
// disk_chunk_pages) so positioning is amortized, matching the
// transfer-dominated per-tuple I/O cost the paper's bmi formula assumes.
//
// Writes may be asynchronous (write-behind): the caller's CPU continues
// while the disk works. Reads may be asynchronous too (prefetch), in which
// case the caller learns the completion time and overlaps CPU with I/O —
// the paper's assumption for complement fragments ("asynchronous I/O").

#ifndef DQSCHED_SIM_DISK_H_
#define DQSCHED_SIM_DISK_H_

#include <cstdint>

#include "common/sim_time.h"
#include "sim/cost_model.h"

namespace dqsched::sim {

/// Statistics accumulated by a SimDisk over one execution.
struct DiskStats {
  int64_t pages_read = 0;
  int64_t pages_written = 0;
  int64_t positionings = 0;  // non-sequential accesses (seek+latency paid)
  int64_t io_calls = 0;      // Transfer() invocations
  SimDuration busy = 0;      // total time the disk arm was busy

  /// Aggregates stats across executions (multi-query accounting).
  DiskStats& operator+=(const DiskStats& other) {
    pages_read += other.pages_read;
    pages_written += other.pages_written;
    positionings += other.positionings;
    io_calls += other.io_calls;
    busy += other.busy;
    return *this;
  }
};

/// Single simulated disk with stream-aware sequential/positioned accesses.
class SimDisk {
 public:
  explicit SimDisk(const CostModel* cost) : cost_(cost) {}

  SimDisk(const SimDisk&) = delete;
  SimDisk& operator=(const SimDisk&) = delete;

  /// Outcome of one Transfer call.
  struct IoResult {
    /// When the transferred data is durable (write) or available (read).
    SimTime data_done = 0;
  };

  /// Transfers `pages` pages of stream `stream_id` starting no earlier than
  /// `now`. The caller is responsible for charging the per-I/O CPU
  /// instructions (CostModel::instr_per_io, once per call) to the mediator
  /// clock; the disk only accounts for arm time.
  IoResult Transfer(SimTime now, int64_t stream_id, int64_t pages,
                    bool is_write);

  /// First time at or after `now` at which the disk arm is free.
  SimTime FreeAt(SimTime now) const { return busy_until_ > now ? busy_until_ : now; }

  const DiskStats& stats() const { return stats_; }

  /// Clears accumulated state between runs.
  void Reset() {
    busy_until_ = 0;
    last_stream_ = -1;
    stats_ = DiskStats{};
  }

 private:
  const CostModel* cost_;
  SimTime busy_until_ = 0;
  int64_t last_stream_ = -1;
  DiskStats stats_;
};

}  // namespace dqsched::sim

#endif  // DQSCHED_SIM_DISK_H_
