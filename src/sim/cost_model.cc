#include "sim/cost_model.h"

namespace dqsched::sim {

SimDuration CostModel::TupleIoTime() const {
  const double per_page =
      static_cast<double>(PageTransferTime()) +
      static_cast<double>(DiskPositionTime()) / disk_chunk_pages +
      static_cast<double>(InstrTime(instr_per_io));
  return static_cast<SimDuration>(per_page / TuplesPerPage());
}

SimDuration CostModel::MinWaitingTime() const {
  // Source-side sequential read (transfer only; the source amortizes its
  // positioning over a full relation scan) + time on the wire + the
  // source-side share of the per-message CPU cost.
  const double read =
      static_cast<double>(PageTransferTime()) / TuplesPerPage();
  const double wire = static_cast<double>(NetworkTupleTime());
  const double msg =
      static_cast<double>(InstrTime(instr_per_message)) / tuples_per_message;
  return static_cast<SimDuration>(read + wire + msg);
}

Status CostModel::Validate() const {
  if (cpu_mips <= 0) return Status::InvalidArgument("cpu_mips must be > 0");
  if (disk_transfer_mb_s <= 0) {
    return Status::InvalidArgument("disk_transfer_mb_s must be > 0");
  }
  if (network_mb_s <= 0) {
    return Status::InvalidArgument("network_mb_s must be > 0");
  }
  if (tuple_size_bytes <= 0 || page_size_bytes <= 0) {
    return Status::InvalidArgument("tuple/page sizes must be > 0");
  }
  if (page_size_bytes < tuple_size_bytes) {
    return Status::InvalidArgument("page must hold at least one tuple");
  }
  if (tuples_per_message <= 0) {
    return Status::InvalidArgument("tuples_per_message must be > 0");
  }
  if (disk_chunk_pages <= 0) {
    return Status::InvalidArgument("disk_chunk_pages must be > 0");
  }
  if (io_cache_pages < 0 || num_disks <= 0) {
    return Status::InvalidArgument("io_cache_pages/num_disks invalid");
  }
  if (disk_latency_ms < 0 || disk_seek_ms < 0) {
    return Status::InvalidArgument("disk positioning times must be >= 0");
  }
  if (instr_per_io < 0 || instr_move_tuple < 0 || instr_hash_probe < 0 ||
      instr_produce_result < 0 || instr_per_message < 0 ||
      instr_hash_insert < 0) {
    return Status::InvalidArgument("instruction costs must be >= 0");
  }
  return Status::Ok();
}

}  // namespace dqsched::sim
