#include "sim/network.h"

#include "common/macros.h"

namespace dqsched::sim {

SimDuration NetworkModel::ChargeReceive(SourceId source, int64_t n) {
  if (n <= 0) return 0;
  DQS_CHECK_MSG(source >= 0, "bad source id %d", source);
  if (static_cast<size_t>(source) >= carry_.size()) {
    carry_.resize(static_cast<size_t>(source) + 1, 0);
  }
  stats_.tuples_received += n;
  int64_t& carry = carry_[static_cast<size_t>(source)];
  carry += n;
  const int64_t per = cost_->tuples_per_message;
  const int64_t messages = carry / per;
  carry %= per;
  stats_.messages_received += messages;
  const SimDuration cpu = cost_->InstrTime(messages * cost_->instr_per_message);
  stats_.receive_cpu += cpu;
  return cpu;
}

}  // namespace dqsched::sim
