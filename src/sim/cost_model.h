// The simulation cost model: Table 1 of the paper, plus the derived
// per-operation virtual-time costs used by every component.
//
// The paper evaluates its prototype by fully implementing the execution
// strategies while *simulating* operator, I/O, and network costs ("a
// performance evaluation methodology similar to [3]"). This struct is the
// single source of truth for those costs.

#ifndef DQSCHED_SIM_COST_MODEL_H_
#define DQSCHED_SIM_COST_MODEL_H_

#include <cstdint>

#include "common/sim_time.h"
#include "common/status.h"

namespace dqsched::sim {

/// Simulation parameters (paper Table 1) with the paper's default values.
/// All fields are public so experiments can tweak them; call Validate()
/// after mutation.
struct CostModel {
  // --- Table 1, verbatim -------------------------------------------------
  /// Mediator CPU speed, million instructions per second.
  double cpu_mips = 100.0;
  /// Positioning overhead of a non-sequential disk access (rotational
  /// latency component), milliseconds.
  double disk_latency_ms = 17.0;
  /// Seek-time component of a non-sequential disk access, milliseconds.
  double disk_seek_ms = 5.0;
  /// Sequential disk transfer rate, megabytes (1e6 bytes) per second.
  double disk_transfer_mb_s = 6.0;
  /// Size of the disk I/O cache, in pages.
  int io_cache_pages = 8;
  /// CPU instructions consumed to issue one I/O.
  int64_t instr_per_io = 3000;
  /// Number of local disks at the mediator.
  int num_disks = 1;
  /// Tuple size in bytes.
  int tuple_size_bytes = 40;
  /// Page size in bytes.
  int page_size_bytes = 8192;
  /// CPU instructions to move a tuple between operators.
  int64_t instr_move_tuple = 100;
  /// CPU instructions to search for a match in a hash table.
  int64_t instr_hash_probe = 100;
  /// CPU instructions to produce one result tuple.
  int64_t instr_produce_result = 50;
  /// Network bandwidth, megabits (1e6 bits) per second.
  double network_mb_s = 100.0;
  /// CPU instructions to send or receive one network message.
  int64_t instr_per_message = 200000;

  // --- dqsched additions (documented substitutions; see DESIGN.md) -------
  /// Bytes a hash-index entry adds on top of the stored tuple (slot key +
  /// index, at a load factor of ~0.5). Used for memory accounting of build
  /// operands.
  int64_t hash_index_entry_bytes = 32;
  /// Tuples batched into one network message. One page's worth by default,
  /// which reproduces the paper's w_min ~= 20 us derivation.
  int tuples_per_message = 204;
  /// Pages written/read per contiguous disk chunk for temp relations.
  /// Amortizes seek+latency so that per-tuple materialization cost is
  /// transfer-dominated, as assumed by the paper's bmi formula.
  int disk_chunk_pages = 64;
  /// CPU instructions to insert one tuple into a hash table (not in Table 1;
  /// modeled like a probe).
  int64_t instr_hash_insert = 100;

  // --- Derived quantities -------------------------------------------------
  /// Virtual time for `n` CPU instructions.
  SimDuration InstrTime(int64_t n) const {
    return static_cast<SimDuration>(static_cast<double>(n) * 1e3 / cpu_mips);
  }

  /// Whole tuples that fit on a page.
  int TuplesPerPage() const { return page_size_bytes / tuple_size_bytes; }

  /// Pages needed to store `tuples` tuples.
  int64_t PagesForTuples(int64_t tuples) const {
    const int per = TuplesPerPage();
    return (tuples + per - 1) / per;
  }

  /// Time to transfer one page to/from disk (no positioning).
  SimDuration PageTransferTime() const {
    return static_cast<SimDuration>(page_size_bytes /
                                    (disk_transfer_mb_s * 1e6) * 1e9);
  }

  /// Positioning cost of a non-sequential disk access (seek + latency).
  SimDuration DiskPositionTime() const {
    return Milliseconds(disk_latency_ms + disk_seek_ms);
  }

  /// Time on the wire for one tuple (payload only, overheads separate).
  SimDuration NetworkTupleTime() const {
    return static_cast<SimDuration>(tuple_size_bytes * 8 /
                                    (network_mb_s * 1e6) * 1e9);
  }

  /// Mediator CPU charged per received tuple: the per-message
  /// send/receive instruction cost amortized over the tuples in a message.
  SimDuration ReceiveTupleCpuTime() const {
    return InstrTime(instr_per_message / tuples_per_message);
  }

  /// Total memory charged per tuple of a resident, indexed build operand.
  int64_t OperandEntryBytes() const {
    return tuple_size_bytes + hash_index_entry_bytes;
  }

  /// Amortized disk time to read or write one tuple of a temp relation
  /// sequentially (transfer + amortized positioning + per-I/O CPU). This is
  /// the `IO_p` of the paper's benefit-materialization indicator.
  SimDuration TupleIoTime() const;

  /// The paper's w_min (Section 5.1.3): the minimum mean inter-tuple delay
  /// of a wrapper that reads tuples sequentially from its local disk and
  /// ships them over the network. ~20 us with the default parameters.
  SimDuration MinWaitingTime() const;

  /// Checks parameter sanity (positive rates, page >= tuple, ...).
  Status Validate() const;
};

}  // namespace dqsched::sim

#endif  // DQSCHED_SIM_COST_MODEL_H_
