#include "sim/disk.h"

#include "common/macros.h"

namespace dqsched::sim {

SimDisk::IoResult SimDisk::Transfer(SimTime now, int64_t stream_id,
                                    int64_t pages, bool is_write) {
  DQS_CHECK_MSG(pages > 0, "Transfer of %lld pages",
                static_cast<long long>(pages));
  const SimTime start = FreeAt(now);
  SimDuration cost = 0;
  if (stream_id != last_stream_) {
    cost += cost_->DiskPositionTime();
    ++stats_.positionings;
    last_stream_ = stream_id;
  }
  cost += pages * cost_->PageTransferTime();
  busy_until_ = start + cost;
  stats_.busy += cost;
  ++stats_.io_calls;
  if (is_write) {
    stats_.pages_written += pages;
  } else {
    stats_.pages_read += pages;
  }
  return IoResult{busy_until_};
}

}  // namespace dqsched::sim
