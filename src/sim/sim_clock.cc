#include "sim/sim_clock.h"

// SimClock is header-only; this translation unit anchors the header for the
// build system and keeps a place for future out-of-line additions.
