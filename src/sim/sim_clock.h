// The mediator's virtual clock. Single-threaded discrete-event simulation:
// the query processor is the only driver; it advances the clock by charging
// CPU time and by waiting for arrivals / disk completions.

#ifndef DQSCHED_SIM_SIM_CLOCK_H_
#define DQSCHED_SIM_SIM_CLOCK_H_

#include "common/macros.h"
#include "common/sim_time.h"

namespace dqsched::sim {

/// Monotonic virtual clock with separate accounting of busy vs stalled time.
class SimClock {
 public:
  SimClock() = default;

  SimTime now() const { return now_; }

  /// Advances by `d` of *busy* time (CPU work, synchronous I/O waits).
  void Advance(SimDuration d) {
    DQS_CHECK_MSG(d >= 0, "negative advance %lld", static_cast<long long>(d));
    now_ += d;
    busy_ += d;
  }

  /// Advances to absolute time `t` as *stall* time (query engine idle,
  /// waiting for data). No-op if `t` is in the past.
  void StallUntil(SimTime t) {
    if (t <= now_) return;
    stalled_ += t - now_;
    now_ = t;
  }

  /// Advances to absolute time `t` as busy time (e.g. synchronous disk
  /// completion later than now). No-op if `t` is in the past.
  void BusyUntil(SimTime t) {
    if (t <= now_) return;
    busy_ += t - now_;
    now_ = t;
  }

  /// Total virtual time spent doing useful work.
  SimDuration busy_time() const { return busy_; }
  /// Total virtual time spent stalled waiting for data.
  SimDuration stalled_time() const { return stalled_; }

  /// Resets to time zero (between strategy runs).
  void Reset() {
    now_ = 0;
    busy_ = 0;
    stalled_ = 0;
  }

 private:
  SimTime now_ = 0;
  SimDuration busy_ = 0;
  SimDuration stalled_ = 0;
};

}  // namespace dqsched::sim

#endif  // DQSCHED_SIM_SIM_CLOCK_H_
