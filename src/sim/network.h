// Network cost helpers. The wrapper-to-mediator path is modeled inside the
// per-tuple delay (the paper's `w` includes production and shipping time);
// this header provides the mediator-side quantities: the CPU cost of
// receiving messages and the wire time of a tuple, both derived from the
// cost model.

#ifndef DQSCHED_SIM_NETWORK_H_
#define DQSCHED_SIM_NETWORK_H_

#include <cstdint>
#include <vector>

#include "common/ids.h"
#include "common/sim_time.h"
#include "sim/cost_model.h"

namespace dqsched::sim {

/// Statistics about mediator-side message handling.
struct NetworkStats {
  int64_t tuples_received = 0;
  int64_t messages_received = 0;
  SimDuration receive_cpu = 0;  // mediator CPU spent in receive path

  /// Aggregates stats across executions (multi-query accounting).
  NetworkStats& operator+=(const NetworkStats& other) {
    tuples_received += other.tuples_received;
    messages_received += other.messages_received;
    receive_cpu += other.receive_cpu;
    return *this;
  }
};

/// Accounts mediator CPU for receiving tuples from the network. Tuples are
/// batched `CostModel::tuples_per_message` per message; the per-message
/// instruction cost (Table 1: 200,000 instructions) is charged to the
/// mediator when it consumes the tuples, keeping the engine single-threaded
/// like the paper's monoprocessor mediator.
class NetworkModel {
 public:
  explicit NetworkModel(const CostModel* cost) : cost_(cost) {}

  /// Returns the mediator CPU time to ingest `n` tuples of `source` and
  /// updates stats. Fractional messages carry over per source so long runs
  /// charge exactly one message per `tuples_per_message` tuples.
  SimDuration ChargeReceive(SourceId source, int64_t n);

  const NetworkStats& stats() const { return stats_; }

  void Reset() {
    stats_ = NetworkStats{};
    carry_.clear();
  }

 private:
  const CostModel* cost_;
  NetworkStats stats_;
  /// Tuples received since the last whole message, per source.
  std::vector<int64_t> carry_;
};

}  // namespace dqsched::sim

#endif  // DQSCHED_SIM_NETWORK_H_
