#include "plan/canonical_plans.h"

#include <cmath>

#include "common/macros.h"

namespace dqsched::plan {
namespace {

int64_t Scaled(double scale, int64_t v) {
  const int64_t s = static_cast<int64_t>(std::llround(scale * static_cast<double>(v)));
  return s < 1 ? 1 : s;
}

wrapper::SourceSpec MakeSource(const char* name, int64_t card,
                               double mean_delay_us) {
  wrapper::SourceSpec s;
  s.relation.name = name;
  s.relation.cardinality = card;
  s.delay.kind = wrapper::DelayKind::kUniform;
  s.delay.mean_us = mean_delay_us;
  return s;
}

}  // namespace

QuerySetup PaperFigure5Query(double scale, double mean_delay_us) {
  QuerySetup q;
  // Cardinalities: A..D medium, E..F small (paper Section 5.1.1).
  auto a = MakeSource("A", Scaled(scale, 150000), mean_delay_us);
  auto b = MakeSource("B", Scaled(scale, 100000), mean_delay_us);
  auto c = MakeSource("C", Scaled(scale, 200000), mean_delay_us);
  auto d = MakeSource("D", Scaled(scale, 100000), mean_delay_us);
  auto e = MakeSource("E", Scaled(scale, 20000), mean_delay_us);
  auto f = MakeSource("F", Scaled(scale, 10000), mean_delay_us);

  // Key domains chosen so intermediate results stay medium-sized:
  //   J1: A.k0 = B.k0, domain 150K -> fanout 1, |J1| ~ 100K
  //   J2: B.k1 = F.k0, domain 25K  -> fanout 4, |J2| ~ 40K
  //   J3: E.k0 = D.k0, domain 20K  -> fanout 1, |J3| ~ 100K
  //   J4: F.k1 = D.k1, domain 40K  -> fanout 1, |J4| ~ 100K
  //   J5: D.k2 = C.k0, domain 100K -> fanout 1, result ~ 200K
  a.relation.key_domain[0] = Scaled(scale, 150000);
  b.relation.key_domain[0] = Scaled(scale, 150000);
  b.relation.key_domain[1] = Scaled(scale, 25000);
  f.relation.key_domain[0] = Scaled(scale, 25000);
  e.relation.key_domain[0] = Scaled(scale, 20000);
  d.relation.key_domain[0] = Scaled(scale, 20000);
  f.relation.key_domain[1] = Scaled(scale, 40000);
  d.relation.key_domain[1] = Scaled(scale, 40000);
  d.relation.key_domain[2] = Scaled(scale, 100000);
  c.relation.key_domain[0] = Scaled(scale, 100000);

  q.catalog.sources = {a, b, c, d, e, f};
  const SourceId sa = 0, sb = 1, sc = 2, sd = 3, se = 4, sf = 5;

  Plan& p = q.plan;
  const NodeId scan_a = p.AddScan(sa);
  const NodeId scan_b = p.AddScan(sb);
  const NodeId scan_c = p.AddScan(sc);
  const NodeId scan_d = p.AddScan(sd);
  const NodeId scan_e = p.AddScan(se);
  const NodeId scan_f = p.AddScan(sf);
  const NodeId j1 = p.AddHashJoin(scan_a, scan_b, /*build_field=*/0,
                                  /*probe_field=*/0);
  const NodeId j2 = p.AddHashJoin(j1, scan_f, /*build_field=*/1,
                                  /*probe_field=*/0);
  const NodeId j3 = p.AddHashJoin(scan_e, scan_d, /*build_field=*/0,
                                  /*probe_field=*/0);
  const NodeId j4 = p.AddHashJoin(j2, j3, /*build_field=*/1,
                                  /*probe_field=*/1);
  const NodeId j5 = p.AddHashJoin(j4, scan_c, /*build_field=*/2,
                                  /*probe_field=*/0);
  p.SetRoot(j5);

  DQS_CHECK_MSG(q.plan.Validate(q.catalog).ok(), "canonical plan invalid: %s",
                q.plan.Validate(q.catalog).ToString().c_str());
  return q;
}

QuerySetup TinyTwoSourceQuery(int64_t card_a, int64_t card_b,
                              double mean_delay_us) {
  QuerySetup q;
  auto a = MakeSource("A", card_a, mean_delay_us);
  auto b = MakeSource("B", card_b, mean_delay_us);
  const int64_t domain = card_a < 1 ? 1 : card_a;  // fanout ~1
  a.relation.key_domain[0] = domain;
  b.relation.key_domain[0] = domain;
  q.catalog.sources = {a, b};
  const NodeId scan_a = q.plan.AddScan(0);
  const NodeId scan_b = q.plan.AddScan(1);
  q.plan.SetRoot(q.plan.AddHashJoin(scan_a, scan_b, 0, 0));
  DQS_CHECK(q.plan.Validate(q.catalog).ok());
  return q;
}

QuerySetup ChainThreeSourceQuery(double mean_delay_us) {
  QuerySetup q;
  auto a = MakeSource("A", 3000, mean_delay_us);
  auto b = MakeSource("B", 5000, mean_delay_us);
  auto c = MakeSource("C", 8000, mean_delay_us);
  // J_inner: B.k0 = C.k0; J_outer: A.k0 = C.k1 (C carries through).
  b.relation.key_domain[0] = 5000;
  c.relation.key_domain[0] = 5000;
  a.relation.key_domain[0] = 3000;
  c.relation.key_domain[1] = 3000;
  q.catalog.sources = {a, b, c};
  const NodeId scan_a = q.plan.AddScan(0);
  const NodeId scan_b = q.plan.AddScan(1);
  const NodeId scan_c = q.plan.AddScan(2);
  const NodeId inner = q.plan.AddHashJoin(scan_b, scan_c, 0, 0);
  q.plan.SetRoot(q.plan.AddHashJoin(scan_a, inner, 0, 1));
  DQS_CHECK(q.plan.Validate(q.catalog).ok());
  return q;
}

}  // namespace dqsched::plan
