#include "plan/reference_executor.h"

#include "common/macros.h"
#include "exec/hash_index.h"
#include "exec/tuple_id_list.h"

namespace dqsched::plan {

ReferenceResult ExecuteReference(const CompiledPlan& compiled,
                                 const std::vector<storage::Relation>& data) {
  using storage::Tuple;
  ReferenceResult out;
  out.chains.resize(static_cast<size_t>(compiled.num_chains()));
  out.op_outputs.resize(static_cast<size_t>(compiled.num_chains()));

  // Per join: the materialized build operand and its key index. The
  // open-addressing HashIndex replaces an unordered_multimap here; it only
  // changes the order in which a probe's matches are emitted, and every
  // consumer of this result is order-insensitive (cardinalities and the
  // commutative ResultChecksum).
  std::vector<std::vector<Tuple>> operands(
      static_cast<size_t>(compiled.num_joins));
  std::vector<exec::HashIndex> indexes(
      static_cast<size_t>(compiled.num_joins));

  // The oracle runs the same batch-at-a-time kernels as the executor —
  // selection-vector filters and two-pass probes — just over whole
  // relations instead of batches, with no charging.
  exec::TupleIdList sel;
  std::vector<uint64_t> homes;
  std::vector<uint32_t> counts;

  for (ChainId id : compiled.IteratorModelOrder()) {
    const ChainInfo& chain = compiled.chain(id);
    DQS_CHECK_MSG(static_cast<size_t>(chain.source) < data.size(),
                  "no data for source %d", chain.source);
    const std::vector<Tuple>& input =
        data[static_cast<size_t>(chain.source)].tuples;
    out.chains[static_cast<size_t>(id)].input_card =
        static_cast<int64_t>(input.size());

    std::vector<Tuple> cur(input);
    for (const ChainOp& op : chain.ops) {
      std::vector<Tuple> next;
      switch (op.kind) {
        case ChainOpKind::kFilter: {
          sel.Resize(static_cast<uint32_t>(cur.size()));
          sel.AddAll();
          sel.Refine([&](uint32_t i) {
            return storage::FilterPasses(cur[i].rowid, op.node,
                                         op.selectivity);
          });
          next.reserve(sel.Count());
          sel.ForEach([&](uint32_t i) { next.push_back(cur[i]); });
          break;
        }
        case ChainOpKind::kProbe: {
          const auto& operand = operands[static_cast<size_t>(op.join)];
          const auto& index = indexes[static_cast<size_t>(op.join)];
          const size_t key_field =
              static_cast<size_t>(op.probe_key_field);
          const size_t n = cur.size();
          homes.resize(n);
          counts.resize(n);
          // Pass 1: hash + first-match slots carrying duplicate counts.
          int64_t total = 0;
          for (size_t i = 0; i < n; ++i) {
            const int64_t key = cur[i].keys[key_field];
            const uint64_t home = index.HomeSlot(key);
            index.PrefetchSlot(home);
            homes[i] = index.FindFirstMatchFrom(home, key);
            counts[i] = homes[i] == exec::HashIndex::kNoMatch
                            ? 0
                            : index.MatchCountAt(homes[i]);
            total += counts[i];
          }
          // Pass 2: expansion at precomputed size.
          next.resize(static_cast<size_t>(total));
          size_t off = 0;
          for (size_t i = 0; i < n; ++i) {
            if (counts[i] == 0) continue;
            const Tuple& t = cur[i];
            index.ForEachMatchFromN(
                homes[i], t.keys[key_field], counts[i], [&](size_t match) {
                  Tuple r = t;  // probe-side fields carry through
                  r.rowid = storage::CombineRowid(operand[match].rowid,
                                                  t.rowid);
                  next[off++] = r;
                });
          }
          break;
        }
      }
      cur = std::move(next);
      out.op_outputs[static_cast<size_t>(id)].push_back(
          static_cast<int64_t>(cur.size()));
    }

    out.chains[static_cast<size_t>(id)].output_card =
        static_cast<int64_t>(cur.size());
    if (chain.is_result) {
      for (const Tuple& t : cur) out.checksum.Add(t);
      out.result_card = static_cast<int64_t>(cur.size());
    } else {
      const int field =
          compiled.join_build_field[static_cast<size_t>(chain.sink_join)];
      auto& operand = operands[static_cast<size_t>(chain.sink_join)];
      operand = std::move(cur);
      indexes[static_cast<size_t>(chain.sink_join)].Build(operand, field);
    }
  }
  return out;
}

}  // namespace dqsched::plan
