#include "plan/reference_executor.h"

#include "common/macros.h"
#include "exec/hash_index.h"

namespace dqsched::plan {

ReferenceResult ExecuteReference(const CompiledPlan& compiled,
                                 const std::vector<storage::Relation>& data) {
  using storage::Tuple;
  ReferenceResult out;
  out.chains.resize(static_cast<size_t>(compiled.num_chains()));
  out.op_outputs.resize(static_cast<size_t>(compiled.num_chains()));

  // Per join: the materialized build operand and its key index. The
  // open-addressing HashIndex replaces an unordered_multimap here; it only
  // changes the order in which a probe's matches are emitted, and every
  // consumer of this result is order-insensitive (cardinalities and the
  // commutative ResultChecksum).
  std::vector<std::vector<Tuple>> operands(
      static_cast<size_t>(compiled.num_joins));
  std::vector<exec::HashIndex> indexes(
      static_cast<size_t>(compiled.num_joins));

  for (ChainId id : compiled.IteratorModelOrder()) {
    const ChainInfo& chain = compiled.chain(id);
    DQS_CHECK_MSG(static_cast<size_t>(chain.source) < data.size(),
                  "no data for source %d", chain.source);
    const std::vector<Tuple>& input =
        data[static_cast<size_t>(chain.source)].tuples;
    out.chains[static_cast<size_t>(id)].input_card =
        static_cast<int64_t>(input.size());

    std::vector<Tuple> cur(input);
    for (const ChainOp& op : chain.ops) {
      std::vector<Tuple> next;
      switch (op.kind) {
        case ChainOpKind::kFilter:
          next.reserve(cur.size());
          for (const Tuple& t : cur) {
            if (storage::FilterPasses(t.rowid, op.node, op.selectivity)) {
              next.push_back(t);
            }
          }
          break;
        case ChainOpKind::kProbe: {
          const auto& operand = operands[static_cast<size_t>(op.join)];
          const auto& index = indexes[static_cast<size_t>(op.join)];
          next.reserve(cur.size());
          for (size_t i = 0; i < cur.size(); ++i) {
            if (i + 1 < cur.size()) {
              index.Prefetch(
                  cur[i + 1].keys[static_cast<size_t>(op.probe_key_field)]);
            }
            const Tuple& t = cur[i];
            const int64_t key =
                t.keys[static_cast<size_t>(op.probe_key_field)];
            index.ForEachMatch(key, [&](size_t match) {
              Tuple r = t;  // probe-side fields carry through
              r.rowid = storage::CombineRowid(operand[match].rowid, t.rowid);
              next.push_back(r);
            });
          }
          break;
        }
      }
      cur = std::move(next);
      out.op_outputs[static_cast<size_t>(id)].push_back(
          static_cast<int64_t>(cur.size()));
    }

    out.chains[static_cast<size_t>(id)].output_card =
        static_cast<int64_t>(cur.size());
    if (chain.is_result) {
      for (const Tuple& t : cur) out.checksum.Add(t);
      out.result_card = static_cast<int64_t>(cur.size());
    } else {
      const int field =
          compiled.join_build_field[static_cast<size_t>(chain.sink_join)];
      auto& operand = operands[static_cast<size_t>(chain.sink_join)];
      operand = std::move(cur);
      indexes[static_cast<size_t>(chain.sink_join)].Build(operand, field);
    }
  }
  return out;
}

}  // namespace dqsched::plan
