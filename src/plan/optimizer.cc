#include "plan/optimizer.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "common/macros.h"

namespace dqsched::plan {

namespace {

/// Validates that `edges` forms a spanning tree with at most
/// kTupleKeyFields predicates per relation and distinct fields per use.
Status ValidateEdges(const wrapper::Catalog& catalog,
                     const std::vector<JoinEdge>& edges) {
  const int n = catalog.num_sources();
  if (static_cast<int>(edges.size()) != n - 1) {
    return Status::InvalidArgument(
        "join graph must be a spanning tree (expected " +
        std::to_string(n - 1) + " edges, got " +
        std::to_string(edges.size()) + ")");
  }
  std::vector<uint8_t> field_used(static_cast<size_t>(n) *
                                  storage::kTupleKeyFields);
  auto use = [&](SourceId r, int f) -> Status {
    if (r < 0 || r >= n) return Status::InvalidArgument("edge endpoint out of range");
    if (f < 0 || f >= storage::kTupleKeyFields) {
      return Status::InvalidArgument("edge field out of range");
    }
    uint8_t& slot =
        field_used[static_cast<size_t>(r) * storage::kTupleKeyFields +
                   static_cast<size_t>(f)];
    if (slot) {
      return Status::InvalidArgument("field " + std::to_string(f) +
                                     " of relation " + std::to_string(r) +
                                     " used by two join predicates");
    }
    slot = 1;
    return Status::Ok();
  };
  // Union-find for connectivity.
  std::vector<int> parent(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) parent[static_cast<size_t>(i)] = i;
  auto find = [&](int x) {
    while (parent[static_cast<size_t>(x)] != x) x = parent[static_cast<size_t>(x)];
    return x;
  };
  for (const JoinEdge& e : edges) {
    DQS_RETURN_IF_ERROR(use(e.a, e.a_field));
    DQS_RETURN_IF_ERROR(use(e.b, e.b_field));
    if (e.domain < 1) return Status::InvalidArgument("edge domain < 1");
    const int ra = find(e.a), rb = find(e.b);
    if (ra == rb) return Status::InvalidArgument("join graph has a cycle");
    parent[static_cast<size_t>(ra)] = rb;
  }
  return Status::Ok();
}

/// DP table entry for (subset, carrier).
struct DpEntry {
  double cost = std::numeric_limits<double>::infinity();
  uint32_t build_mask = 0;  // 0 => leaf scan
  SourceId build_carrier = kInvalidId;
  int edge = -1;  // the cross predicate joined on
};

}  // namespace

Result<Plan> OptimizeBushy(const wrapper::Catalog& catalog,
                           const std::vector<JoinEdge>& edges) {
  DQS_RETURN_IF_ERROR(catalog.Validate());
  const int n = catalog.num_sources();
  DQS_CHECK_MSG(n <= 20, "DP optimizer supports at most 20 relations");

  if (n == 1) {
    Plan plan;
    plan.SetRoot(plan.AddScan(0));
    return plan;
  }
  DQS_RETURN_IF_ERROR(ValidateEdges(catalog, edges));

  const uint32_t full = (1u << n) - 1;
  // Cardinality of each connected subset under the textbook model:
  // product of base cardinalities times 1/domain per internal predicate.
  std::vector<double> card(full + 1, 0.0);
  for (uint32_t s = 1; s <= full; ++s) {
    double c = 1.0;
    for (int r = 0; r < n; ++r) {
      if (s & (1u << r)) {
        c *= static_cast<double>(catalog.source(r).relation.cardinality);
      }
    }
    for (const JoinEdge& e : edges) {
      if ((s & (1u << e.a)) && (s & (1u << e.b))) {
        c /= static_cast<double>(e.domain);
      }
    }
    card[s] = c;
  }

  // dp[s][carrier].
  std::vector<std::vector<DpEntry>> dp(
      full + 1, std::vector<DpEntry>(static_cast<size_t>(n)));
  for (int r = 0; r < n; ++r) {
    dp[1u << r][static_cast<size_t>(r)].cost = 0.0;
  }

  // Subsets in increasing popcount order; plain increasing order works
  // because every proper submask is numerically smaller.
  for (uint32_t s = 1; s <= full; ++s) {
    if ((s & (s - 1)) == 0) continue;  // singleton
    const uint32_t low = s & (0u - s);
    for (uint32_t left = (s - 1) & s; left; left = (left - 1) & s) {
      if (!(left & low)) continue;  // canonical split: left holds low bit
      const uint32_t right = s & ~left;
      // Tree graph: a valid split has exactly one cross predicate.
      int cross = -1;
      bool multiple = false;
      for (size_t ei = 0; ei < edges.size(); ++ei) {
        const JoinEdge& e = edges[ei];
        const bool a_left = (left >> e.a) & 1, b_left = (left >> e.b) & 1;
        if (((left & (1u << e.a)) != 0) != ((left & (1u << e.b)) != 0) &&
            (s & (1u << e.a)) && (s & (1u << e.b))) {
          if (cross >= 0) multiple = true;
          cross = static_cast<int>(ei);
        }
        (void)a_left;
        (void)b_left;
      }
      if (cross < 0 || multiple) continue;
      const JoinEdge& e = edges[static_cast<size_t>(cross)];
      // Orientation 1: the side holding e.a builds (hashed on a_field),
      // the side holding e.b probes (carrier must be e.b). Orientation 2
      // is the mirror.
      const uint32_t a_side = (left & (1u << e.a)) ? left : right;
      const uint32_t b_side = s & ~a_side;
      const auto relax = [&](uint32_t bmask, SourceId bcar, uint32_t pmask,
                             SourceId pcar) {
        const DpEntry& b = dp[bmask][static_cast<size_t>(bcar)];
        const DpEntry& p = dp[pmask][static_cast<size_t>(pcar)];
        if (!std::isfinite(b.cost) || !std::isfinite(p.cost)) return;
        const double total = b.cost + p.cost + card[s];
        DpEntry& out = dp[s][static_cast<size_t>(pcar)];
        if (total < out.cost) {
          out.cost = total;
          out.build_mask = bmask;
          out.build_carrier = bcar;
          out.edge = cross;
        }
      };
      relax(a_side, e.a, b_side, e.b);
      relax(b_side, e.b, a_side, e.a);
    }
  }

  // Pick the best carrier for the full set and reconstruct.
  SourceId best_carrier = kInvalidId;
  for (int r = 0; r < n; ++r) {
    if (dp[full][static_cast<size_t>(r)].cost <
        (best_carrier == kInvalidId
             ? std::numeric_limits<double>::infinity()
             : dp[full][static_cast<size_t>(best_carrier)].cost)) {
      best_carrier = r;
    }
  }
  if (best_carrier == kInvalidId) {
    return Status::Internal("DP found no plan (disconnected join graph?)");
  }

  Plan plan;
  std::vector<NodeId> scans(static_cast<size_t>(n));
  for (int r = 0; r < n; ++r) scans[static_cast<size_t>(r)] = plan.AddScan(r);

  // Recursive reconstruction of (subset, carrier) -> node id.
  auto build = [&](auto&& self, uint32_t s, SourceId carrier) -> NodeId {
    if ((s & (s - 1)) == 0) return scans[static_cast<size_t>(carrier)];
    const DpEntry& entry = dp[s][static_cast<size_t>(carrier)];
    DQS_CHECK_MSG(std::isfinite(entry.cost), "reconstruction hit an "
                                             "unreachable DP state");
    const JoinEdge& e = edges[static_cast<size_t>(entry.edge)];
    const uint32_t pmask = s & ~entry.build_mask;
    const NodeId bnode = self(self, entry.build_mask, entry.build_carrier);
    const NodeId pnode = self(self, pmask, carrier);
    const bool build_is_a = entry.build_carrier == e.a;
    return plan.AddHashJoin(bnode, pnode,
                            build_is_a ? e.a_field : e.b_field,
                            build_is_a ? e.b_field : e.a_field);
  };
  plan.SetRoot(build(build, full, best_carrier));
  DQS_RETURN_IF_ERROR(plan.Validate(catalog));
  return plan;
}

double EstimatePlanCost(const Plan& plan, const wrapper::Catalog& catalog) {
  struct Est {
    double card = 0.0;
    double cost = 0.0;
    SourceId carrier = kInvalidId;
  };
  auto visit = [&](auto&& self, NodeId id) -> Est {
    const PlanNode& node = plan.node(id);
    switch (node.type) {
      case OpType::kScan:
        return {static_cast<double>(
                    catalog.source(node.source).relation.cardinality),
                0.0, node.source};
      case OpType::kFilter: {
        Est in = self(self, node.input);
        return {in.card * node.selectivity, in.cost, in.carrier};
      }
      case OpType::kHashJoin: {
        const Est b = self(self, node.build);
        const Est p = self(self, node.probe);
        const int64_t domain =
            catalog.source(p.carrier)
                .relation.key_domain[static_cast<size_t>(node.probe_key_field)];
        const double out =
            p.card * (b.card / static_cast<double>(domain < 1 ? 1 : domain));
        return {out, b.cost + p.cost + out, p.carrier};
      }
    }
    return {};
  };
  return visit(visit, plan.root()).cost;
}

}  // namespace dqsched::plan
