// Reference (oracle) executor: evaluates a compiled plan directly over
// generated relations, with no simulation, producing exact per-chain
// cardinalities and the exact result multiset checksum.
//
// Used for (a) answer verification of every strategy, and (b) the exact
// n_p values the analytic lower bound LWB needs (paper Section 5.1.2).

#ifndef DQSCHED_PLAN_REFERENCE_EXECUTOR_H_
#define DQSCHED_PLAN_REFERENCE_EXECUTOR_H_

#include <vector>

#include "plan/compiled_plan.h"
#include "storage/relation.h"
#include "storage/tuple.h"

namespace dqsched::plan {

/// Exact input/output cardinalities of one chain.
struct ExactChainStats {
  int64_t input_card = 0;
  int64_t output_card = 0;
};

/// Exact execution facts of a query over concrete data.
struct ReferenceResult {
  /// Indexed by chain id.
  std::vector<ExactChainStats> chains;
  /// Exact cardinality after each op of each chain (outer index: chain id;
  /// inner: op position). Drives the exact-CPU term of the lower bound.
  std::vector<std::vector<int64_t>> op_outputs;
  int64_t result_card = 0;
  storage::ResultChecksum checksum;
};

/// Evaluates `compiled` over `data` (indexed by SourceId). Every strategy
/// must reproduce `checksum` exactly.
ReferenceResult ExecuteReference(const CompiledPlan& compiled,
                                 const std::vector<storage::Relation>& data);

}  // namespace dqsched::plan

#endif  // DQSCHED_PLAN_REFERENCE_EXECUTOR_H_
