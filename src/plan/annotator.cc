// Cost/cardinality annotation of compiled plans (the "annotated query
// execution plan" of paper Section 3.3: memory requirement of each
// operator and estimated result sizes, plus the per-tuple CPU cost c_p the
// scheduler's critical degree needs).

#include <cmath>

#include "common/macros.h"
#include "plan/compiled_plan.h"

namespace dqsched::plan {

Status Annotate(CompiledPlan* compiled, const wrapper::Catalog& catalog,
                const sim::CostModel& cost) {
  DQS_RETURN_IF_ERROR(cost.Validate());
  DQS_RETURN_IF_ERROR(catalog.Validate());

  // Chains are created result-first; a chain's blockers always have larger
  // ids, so descending id order annotates operands before their consumers.
  for (int i = compiled->num_chains() - 1; i >= 0; --i) {
    ChainInfo& chain = compiled->chains[static_cast<size_t>(i)];
    const auto& src_rel = catalog.source(chain.source).relation;
    chain.est_input_card = static_cast<double>(src_rel.cardinality);

    double multiplier = 1.0;  // expected output tuples per source tuple
    // Receive from the network plus the scan's per-tuple move.
    double cpu_ns = static_cast<double>(cost.ReceiveTupleCpuTime()) +
                    static_cast<double>(cost.InstrTime(cost.instr_move_tuple));
    double open_ns = 0.0;
    double mem = 0.0;

    for (const ChainOp& op : chain.ops) {
      switch (op.kind) {
        case ChainOpKind::kFilter:
          cpu_ns += multiplier *
                    static_cast<double>(cost.InstrTime(cost.instr_move_tuple));
          multiplier *= op.selectivity;
          break;
        case ChainOpKind::kProbe: {
          const ChainId opnd =
              compiled->operand_of_join[static_cast<size_t>(op.join)];
          const double operand_card =
              compiled->chain(opnd).est_output_card;
          const int64_t domain =
              src_rel.key_domain[static_cast<size_t>(op.probe_key_field)];
          const double fanout =
              operand_card / static_cast<double>(domain < 1 ? 1 : domain);
          cpu_ns +=
              multiplier *
              static_cast<double>(cost.InstrTime(cost.instr_hash_probe));
          cpu_ns += multiplier * fanout *
                    static_cast<double>(
                        cost.InstrTime(cost.instr_produce_result));
          multiplier *= fanout;
          open_ns += operand_card *
                     static_cast<double>(cost.InstrTime(cost.instr_hash_insert));
          mem += operand_card * static_cast<double>(cost.OperandEntryBytes());
          break;
        }
      }
    }
    // Sink: move into the operand buffer / result collector.
    cpu_ns += multiplier *
              static_cast<double>(cost.InstrTime(cost.instr_move_tuple));

    chain.est_output_card = chain.est_input_card * multiplier;
    chain.est_cpu_per_tuple_ns = cpu_ns;
    chain.est_open_cpu_ns = open_ns;
    chain.est_mem_bytes = mem;
    chain.est_sink_mem_bytes =
        chain.is_result
            ? 0.0
            : chain.est_output_card *
                  static_cast<double>(cost.tuple_size_bytes);
  }
  return Status::Ok();
}

}  // namespace dqsched::plan
