#include "plan/plan_node.h"

#include <vector>

#include "common/macros.h"
#include "storage/tuple.h"

namespace dqsched::plan {

const char* OpTypeName(OpType type) {
  switch (type) {
    case OpType::kScan:
      return "Scan";
    case OpType::kFilter:
      return "Filter";
    case OpType::kHashJoin:
      return "HashJoin";
  }
  return "Unknown";
}

NodeId Plan::Add(PlanNode node) {
  node.id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(node);
  return node.id;
}

NodeId Plan::AddScan(SourceId source) {
  PlanNode n;
  n.type = OpType::kScan;
  n.source = source;
  return Add(n);
}

NodeId Plan::AddFilter(NodeId input, double selectivity) {
  PlanNode n;
  n.type = OpType::kFilter;
  n.input = input;
  n.selectivity = selectivity;
  return Add(n);
}

NodeId Plan::AddHashJoin(NodeId build, NodeId probe, int build_key_field,
                         int probe_key_field) {
  PlanNode n;
  n.type = OpType::kHashJoin;
  n.build = build;
  n.probe = probe;
  n.build_key_field = build_key_field;
  n.probe_key_field = probe_key_field;
  return Add(n);
}

const PlanNode& Plan::node(NodeId id) const {
  DQS_CHECK_MSG(id >= 0 && id < size(), "bad node id %d", id);
  return nodes_[static_cast<size_t>(id)];
}

Status Plan::Validate(const wrapper::Catalog& catalog) const {
  if (nodes_.empty()) return Status::InvalidArgument("plan has no nodes");
  if (root_ < 0 || root_ >= size()) {
    return Status::InvalidArgument("plan root is not set or out of range");
  }
  std::vector<int> child_refs(nodes_.size(), 0);
  std::vector<int> source_refs(static_cast<size_t>(catalog.num_sources()), 0);
  auto check_child = [&](NodeId parent, NodeId child,
                         const char* role) -> Status {
    if (child < 0 || child >= size()) {
      return Status::InvalidArgument("node " + std::to_string(parent) +
                                     " has invalid " + role + " child");
    }
    ++child_refs[static_cast<size_t>(child)];
    return Status::Ok();
  };
  for (const PlanNode& n : nodes_) {
    switch (n.type) {
      case OpType::kScan:
        if (n.source < 0 || n.source >= catalog.num_sources()) {
          return Status::InvalidArgument("scan node " + std::to_string(n.id) +
                                         " references unknown source");
        }
        ++source_refs[static_cast<size_t>(n.source)];
        break;
      case OpType::kFilter: {
        DQS_RETURN_IF_ERROR(check_child(n.id, n.input, "filter"));
        if (n.selectivity < 0.0 || n.selectivity > 1.0) {
          return Status::InvalidArgument("filter node " +
                                         std::to_string(n.id) +
                                         " selectivity out of [0,1]");
        }
        break;
      }
      case OpType::kHashJoin: {
        DQS_RETURN_IF_ERROR(check_child(n.id, n.build, "build"));
        DQS_RETURN_IF_ERROR(check_child(n.id, n.probe, "probe"));
        if (n.build == n.probe) {
          return Status::InvalidArgument("join node " + std::to_string(n.id) +
                                         " has identical children");
        }
        if (n.build_key_field < 0 ||
            n.build_key_field >= storage::kTupleKeyFields ||
            n.probe_key_field < 0 ||
            n.probe_key_field >= storage::kTupleKeyFields) {
          return Status::InvalidArgument("join node " + std::to_string(n.id) +
                                         " key field out of range");
        }
        break;
      }
    }
  }
  // Tree shape: the root has no parent, every other node exactly one.
  for (const PlanNode& n : nodes_) {
    const int refs = child_refs[static_cast<size_t>(n.id)];
    if (n.id == root_) {
      if (refs != 0) {
        return Status::InvalidArgument("root node is referenced as a child");
      }
    } else if (refs != 1) {
      return Status::InvalidArgument(
          "node " + std::to_string(n.id) + " is referenced " +
          std::to_string(refs) + " times (plan must be a tree)");
    }
  }
  for (size_t s = 0; s < source_refs.size(); ++s) {
    if (source_refs[s] > 1) {
      return Status::InvalidArgument(
          "source " + catalog.sources[s].relation.name +
          " is scanned more than once");
    }
  }
  return Status::Ok();
}

std::string Plan::ToString(const wrapper::Catalog& catalog) const {
  // Recursive rendering; plans are small (tens of nodes).
  struct Render {
    const Plan* plan;
    const wrapper::Catalog* cat;
    std::string Visit(NodeId id) const {
      const PlanNode& n = plan->node(id);
      switch (n.type) {
        case OpType::kScan:
          return cat->source(n.source).relation.name;
        case OpType::kFilter:
          return "F" + std::to_string(n.selectivity).substr(0, 4) + "(" +
                 Visit(n.input) + ")";
        case OpType::kHashJoin:
          return "HJ(" + Visit(n.build) + "," + Visit(n.probe) + ")";
      }
      return "?";
    }
  };
  return Render{this, &catalog}.Visit(root_);
}

}  // namespace dqsched::plan
