// Random query generation, in the spirit of the paper's methodology:
// "The query was generated using the algorithm of [14] and optimized in a
// classical dynamic programming query optimizer" (Section 5.1.1).
//
// Two entry points:
//  * GenerateJoinGraph — a random acyclic (tree-shaped) join graph over
//    randomly sized relations, the input a query optimizer expects;
//  * GenerateBushyQuery — a complete random bushy plan + catalog, either
//    by random tree shaping or by running the DP optimizer of
//    plan/optimizer.h over a generated join graph.
//
// All shapes/cardinalities/domains derive deterministically from the seed.

#ifndef DQSCHED_PLAN_QUERY_GENERATOR_H_
#define DQSCHED_PLAN_QUERY_GENERATOR_H_

#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "plan/canonical_plans.h"
#include "plan/optimizer.h"

namespace dqsched::plan {

/// Tunables for random query generation.
struct GeneratorConfig {
  int num_sources = 5;
  int64_t min_cardinality = 2000;
  int64_t max_cardinality = 30000;
  /// Mean uniform delay of every generated wrapper, microseconds.
  double mean_delay_us = 20.0;
  /// Probability that a scan is topped by a filter.
  double filter_probability = 0.3;
  double min_selectivity = 0.3;
  double max_selectivity = 0.9;
  /// Expected per-probe fanout is drawn uniformly from this range; keeps
  /// intermediate results within a small factor of their probe input.
  double min_fanout = 0.5;
  double max_fanout = 1.3;
  uint64_t seed = 1;
};

/// Generates a catalog plus a tree-shaped join graph over it.
struct GeneratedGraph {
  wrapper::Catalog catalog;
  std::vector<JoinEdge> edges;
};
GeneratedGraph GenerateJoinGraph(const GeneratorConfig& config);

/// Generates a complete random bushy query. With `use_optimizer` the plan
/// comes from the DP optimizer over a random join graph (the paper's
/// pipeline); otherwise the tree shape itself is random.
Result<QuerySetup> GenerateBushyQuery(const GeneratorConfig& config,
                                      bool use_optimizer = false);

}  // namespace dqsched::plan

#endif  // DQSCHED_PLAN_QUERY_GENERATOR_H_
