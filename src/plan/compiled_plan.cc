#include "plan/compiled_plan.h"

#include <algorithm>

#include "common/macros.h"

namespace dqsched::plan {

namespace {

/// Recursive chain extractor. Chains are created result-chain-first;
/// blocker chains get higher ids — ids are arbitrary labels, ordering
/// semantics come from the blocker DAG.
class Compiler {
 public:
  Compiler(const Plan& plan, const wrapper::Catalog& catalog)
      : plan_(plan), catalog_(catalog) {}

  Result<CompiledPlan> Run() {
    const ChainId result =
        CompileChain(plan_.root(), /*is_result=*/true, kInvalidId, 0);
    out_.result_chain = result;
    out_.num_joins = next_join_;
    return std::move(out_);
  }

 private:
  /// Compiles the chain whose top operator is `top`, flowing into either
  /// the result sink or the operand of `sink_join` hashed on
  /// `build_key_field`.
  ChainId CompileChain(NodeId top, bool is_result, JoinId sink_join,
                       int build_key_field) {
    ChainInfo chain;
    chain.id = static_cast<ChainId>(out_.chains.size());
    chain.is_result = is_result;
    chain.sink_join = sink_join;
    chain.build_key_field = build_key_field;
    out_.chains.emplace_back();  // reserve the slot / the id

    // Walk down pipelinable edges, collecting ops top-to-bottom.
    struct PendingBuild {
      NodeId build_top;
      JoinId join;
      int build_field;
    };
    std::vector<ChainOp> ops_down;
    std::vector<PendingBuild> builds;
    NodeId cur = top;
    for (;;) {
      const PlanNode& n = plan_.node(cur);
      if (n.type == OpType::kHashJoin) {
        const JoinId join = next_join_++;
        out_.operand_of_join.push_back(kInvalidId);  // filled below
        out_.join_build_field.push_back(n.build_key_field);
        ChainOp op;
        op.kind = ChainOpKind::kProbe;
        op.node = n.id;
        op.join = join;
        op.probe_key_field = n.probe_key_field;
        ops_down.push_back(op);
        builds.push_back({n.build, join, n.build_key_field});
        cur = n.probe;
      } else if (n.type == OpType::kFilter) {
        ChainOp op;
        op.kind = ChainOpKind::kFilter;
        op.node = n.id;
        op.selectivity = n.selectivity;
        ops_down.push_back(op);
        cur = n.input;
      } else {  // kScan: chain head
        chain.source = n.source;
        break;
      }
    }
    chain.ops.assign(ops_down.rbegin(), ops_down.rend());
    chain.name = "p_" + catalog_.source(chain.source).relation.name;

    // Compile the build sides; they block this chain.
    for (const PendingBuild& b : builds) {
      const ChainId bc = CompileChain(b.build_top, /*is_result=*/false,
                                      b.join, b.build_field);
      out_.operand_of_join[static_cast<size_t>(b.join)] = bc;
      chain.blockers.push_back(bc);
    }
    out_.chains[static_cast<size_t>(chain.id)] = std::move(chain);
    return out_.chains[static_cast<size_t>(chain.id)].id;
  }

  const Plan& plan_;
  const wrapper::Catalog& catalog_;
  CompiledPlan out_;
  JoinId next_join_ = 0;
};

}  // namespace

std::vector<ChainId> CompiledPlan::Ancestors(ChainId id) const {
  std::vector<bool> seen(chains.size(), false);
  std::vector<ChainId> stack = chain(id).blockers;
  std::vector<ChainId> out;
  while (!stack.empty()) {
    const ChainId c = stack.back();
    stack.pop_back();
    if (seen[static_cast<size_t>(c)]) continue;
    seen[static_cast<size_t>(c)] = true;
    out.push_back(c);
    for (ChainId b : chain(c).blockers) stack.push_back(b);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<ChainId> CompiledPlan::IteratorModelOrder() const {
  std::vector<ChainId> order;
  std::vector<bool> visited(chains.size(), false);
  // Post-order over the blocking DAG, operands in probe-op order.
  auto visit = [&](auto&& self, ChainId id) -> void {
    if (visited[static_cast<size_t>(id)]) return;
    visited[static_cast<size_t>(id)] = true;
    for (const ChainOp& op : chain(id).ops) {
      if (op.kind == ChainOpKind::kProbe) {
        self(self, operand_of_join[static_cast<size_t>(op.join)]);
      }
    }
    order.push_back(id);
  };
  visit(visit, result_chain);
  DQS_CHECK_MSG(order.size() == chains.size(),
                "iterator order visited %zu of %zu chains", order.size(),
                chains.size());
  return order;
}

Result<CompiledPlan> Compile(const Plan& plan,
                             const wrapper::Catalog& catalog) {
  DQS_RETURN_IF_ERROR(plan.Validate(catalog));
  return Compiler(plan, catalog).Run();
}

}  // namespace dqsched::plan
