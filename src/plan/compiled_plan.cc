#include "plan/compiled_plan.h"

#include <algorithm>
#include <bit>

#include "common/macros.h"

namespace dqsched::plan {

namespace {

/// Recursive chain extractor. Chains are created result-chain-first;
/// blocker chains get higher ids — ids are arbitrary labels, ordering
/// semantics come from the blocker DAG.
class Compiler {
 public:
  Compiler(const Plan& plan, const wrapper::Catalog& catalog)
      : plan_(plan), catalog_(catalog) {}

  Result<CompiledPlan> Run() {
    const ChainId result =
        CompileChain(plan_.root(), /*is_result=*/true, kInvalidId, 0);
    out_.result_chain = result;
    out_.num_joins = next_join_;
    return std::move(out_);
  }

 private:
  /// Compiles the chain whose top operator is `top`, flowing into either
  /// the result sink or the operand of `sink_join` hashed on
  /// `build_key_field`.
  ChainId CompileChain(NodeId top, bool is_result, JoinId sink_join,
                       int build_key_field) {
    ChainInfo chain;
    chain.id = static_cast<ChainId>(out_.chains.size());
    chain.is_result = is_result;
    chain.sink_join = sink_join;
    chain.build_key_field = build_key_field;
    out_.chains.emplace_back();  // reserve the slot / the id

    // Walk down pipelinable edges, collecting ops top-to-bottom.
    struct PendingBuild {
      NodeId build_top;
      JoinId join;
      int build_field;
    };
    std::vector<ChainOp> ops_down;
    std::vector<PendingBuild> builds;
    NodeId cur = top;
    for (;;) {
      const PlanNode& n = plan_.node(cur);
      if (n.type == OpType::kHashJoin) {
        const JoinId join = next_join_++;
        out_.operand_of_join.push_back(kInvalidId);  // filled below
        out_.join_build_field.push_back(n.build_key_field);
        ChainOp op;
        op.kind = ChainOpKind::kProbe;
        op.node = n.id;
        op.join = join;
        op.probe_key_field = n.probe_key_field;
        ops_down.push_back(op);
        builds.push_back({n.build, join, n.build_key_field});
        cur = n.probe;
      } else if (n.type == OpType::kFilter) {
        ChainOp op;
        op.kind = ChainOpKind::kFilter;
        op.node = n.id;
        op.selectivity = n.selectivity;
        ops_down.push_back(op);
        cur = n.input;
      } else {  // kScan: chain head
        chain.source = n.source;
        break;
      }
    }
    chain.ops.assign(ops_down.rbegin(), ops_down.rend());
    chain.name = "p_" + catalog_.source(chain.source).relation.name;

    // Compile the build sides; they block this chain.
    for (const PendingBuild& b : builds) {
      const ChainId bc = CompileChain(b.build_top, /*is_result=*/false,
                                      b.join, b.build_field);
      out_.operand_of_join[static_cast<size_t>(b.join)] = bc;
      chain.blockers.push_back(bc);
    }
    out_.chains[static_cast<size_t>(chain.id)] = std::move(chain);
    return out_.chains[static_cast<size_t>(chain.id)].id;
  }

  const Plan& plan_;
  const wrapper::Catalog& catalog_;
  CompiledPlan out_;
  JoinId next_join_ = 0;
};

}  // namespace

void CompiledPlan::BuildClosureIndex() {
  const size_t n = chains.size();
  anc_offset.assign(n + 1, 0);
  anc_arena.clear();
  desc_offset.assign(n + 1, 0);
  desc_arena.clear();
  if (n == 0) return;

  // Topological order over blocker edges (every blocker before the chains
  // it blocks). The compiler assigns blockers higher ids than the blocked
  // chain, but hand-assembled plans may not, so order explicitly.
  std::vector<int> pending(n);
  std::vector<ChainId> ready;
  std::vector<std::vector<ChainId>> direct_deps(n);
  for (size_t c = 0; c < n; ++c) {
    pending[c] = static_cast<int>(chains[c].blockers.size());
    if (pending[c] == 0) ready.push_back(static_cast<ChainId>(c));
    for (ChainId b : chains[c].blockers) {
      direct_deps[static_cast<size_t>(b)].push_back(static_cast<ChainId>(c));
    }
  }
  std::vector<ChainId> topo;
  topo.reserve(n);
  while (!ready.empty()) {
    const ChainId c = ready.back();
    ready.pop_back();
    topo.push_back(c);
    for (ChainId d : direct_deps[static_cast<size_t>(c)]) {
      if (--pending[static_cast<size_t>(d)] == 0) ready.push_back(d);
    }
  }
  DQS_CHECK_MSG(topo.size() == n,
                "closure index over a cyclic blocker relation (%zu of %zu "
                "chains ordered)",
                topo.size(), n);

  // One bitset row per chain: anc(c) = U_{b in blockers(c)} {b} + anc(b).
  const size_t words = (n + 63) / 64;
  std::vector<uint64_t> bits(n * words, 0);
  for (ChainId c : topo) {
    uint64_t* row = bits.data() + static_cast<size_t>(c) * words;
    for (ChainId b : chains[static_cast<size_t>(c)].blockers) {
      row[static_cast<size_t>(b) / 64] |= uint64_t{1}
                                          << (static_cast<size_t>(b) % 64);
      const uint64_t* brow = bits.data() + static_cast<size_t>(b) * words;
      for (size_t w = 0; w < words; ++w) row[w] |= brow[w];
    }
  }

  // Emit the ancestor arena (ascending by construction of the bit scan)
  // and count descendants per ancestor for the transposed arena.
  std::vector<int32_t> desc_count(n, 0);
  for (size_t c = 0; c < n; ++c) {
    const uint64_t* row = bits.data() + c * words;
    for (size_t w = 0; w < words; ++w) {
      uint64_t word = row[w];
      while (word != 0) {
        const auto bit = static_cast<size_t>(std::countr_zero(word));
        word &= word - 1;
        const auto a = static_cast<ChainId>(w * 64 + bit);
        anc_arena.push_back(a);
        ++desc_count[static_cast<size_t>(a)];
      }
    }
    anc_offset[c + 1] = static_cast<int32_t>(anc_arena.size());
  }
  for (size_t a = 0; a < n; ++a) {
    desc_offset[a + 1] = desc_offset[a] + desc_count[a];
  }
  // Filling in ascending chain order keeps every descendant span ascending
  // — the DQS's incremental subtree recompute relies on summing the span
  // in exactly the order the full recompute adds (see DESIGN.md §9).
  desc_arena.resize(anc_arena.size());
  std::vector<int32_t> cursor(desc_offset.begin(), desc_offset.end() - 1);
  for (size_t c = 0; c < n; ++c) {
    for (int32_t i = anc_offset[c]; i < anc_offset[c + 1]; ++i) {
      const auto a = static_cast<size_t>(anc_arena[static_cast<size_t>(i)]);
      desc_arena[static_cast<size_t>(cursor[a]++)] =
          static_cast<ChainId>(c);
    }
  }
}

Status CompiledPlan::ValidateClosureIndex() const {
  if (!HasClosureIndex() || desc_offset.size() != chains.size() + 1) {
    return Status::Internal("closure index missing or mis-sized");
  }
  std::vector<std::vector<ChainId>> ref_desc(chains.size());
  for (ChainId c = 0; c < num_chains(); ++c) {
    const std::vector<ChainId> ref = Ancestors(c);
    const std::span<const ChainId> got = AncestorsOf(c);
    if (!std::equal(ref.begin(), ref.end(), got.begin(), got.end())) {
      return Status::Internal("ancestor span of chain " + std::to_string(c) +
                              " disagrees with the reference DFS");
    }
    for (ChainId a : ref) ref_desc[static_cast<size_t>(a)].push_back(c);
  }
  for (ChainId c = 0; c < num_chains(); ++c) {
    const std::vector<ChainId>& ref = ref_desc[static_cast<size_t>(c)];
    const std::span<const ChainId> got = TransitiveDependentsOf(c);
    if (!std::equal(ref.begin(), ref.end(), got.begin(), got.end())) {
      return Status::Internal("descendant span of chain " +
                              std::to_string(c) +
                              " disagrees with the reference DFS");
    }
  }
  return Status::Ok();
}

std::vector<ChainId> CompiledPlan::Ancestors(ChainId id) const {
  std::vector<bool> seen(chains.size(), false);
  std::vector<ChainId> stack = chain(id).blockers;
  std::vector<ChainId> out;
  while (!stack.empty()) {
    const ChainId c = stack.back();
    stack.pop_back();
    if (seen[static_cast<size_t>(c)]) continue;
    seen[static_cast<size_t>(c)] = true;
    out.push_back(c);
    for (ChainId b : chain(c).blockers) stack.push_back(b);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<ChainId> CompiledPlan::IteratorModelOrder() const {
  std::vector<ChainId> order;
  std::vector<bool> visited(chains.size(), false);
  // Post-order over the blocking DAG, operands in probe-op order.
  auto visit = [&](auto&& self, ChainId id) -> void {
    if (visited[static_cast<size_t>(id)]) return;
    visited[static_cast<size_t>(id)] = true;
    for (const ChainOp& op : chain(id).ops) {
      if (op.kind == ChainOpKind::kProbe) {
        self(self, operand_of_join[static_cast<size_t>(op.join)]);
      }
    }
    order.push_back(id);
  };
  visit(visit, result_chain);
  DQS_CHECK_MSG(order.size() == chains.size(),
                "iterator order visited %zu of %zu chains", order.size(),
                chains.size());
  return order;
}

Result<CompiledPlan> Compile(const Plan& plan,
                             const wrapper::Catalog& catalog) {
  DQS_RETURN_IF_ERROR(plan.Validate(catalog));
  Result<CompiledPlan> compiled = Compiler(plan, catalog).Run();
  if (compiled.ok()) compiled.value().BuildClosureIndex();
  return compiled;
}

}  // namespace dqsched::plan
