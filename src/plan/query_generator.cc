#include "plan/query_generator.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "common/macros.h"

namespace dqsched::plan {

namespace {

wrapper::Catalog RandomCatalog(const GeneratorConfig& config, Rng& rng) {
  wrapper::Catalog catalog;
  for (int i = 0; i < config.num_sources; ++i) {
    wrapper::SourceSpec spec;
    spec.relation.name = "R" + std::to_string(i);
    spec.relation.cardinality =
        rng.UniformRange(config.min_cardinality, config.max_cardinality);
    spec.delay.kind = wrapper::DelayKind::kUniform;
    spec.delay.mean_us = config.mean_delay_us;
    catalog.sources.push_back(std::move(spec));
  }
  return catalog;
}

int64_t PickDomain(const GeneratorConfig& config, Rng& rng, double build_card) {
  const double fanout =
      config.min_fanout +
      rng.NextDouble() * (config.max_fanout - config.min_fanout);
  const double domain = std::max(1.0, build_card / fanout);
  return static_cast<int64_t>(std::llround(domain));
}

}  // namespace

GeneratedGraph GenerateJoinGraph(const GeneratorConfig& config) {
  DQS_CHECK_MSG(config.num_sources >= 1, "need at least one source");
  Rng rng(config.seed);
  GeneratedGraph out;
  out.catalog = RandomCatalog(config, rng);

  std::vector<int> fields_used(static_cast<size_t>(config.num_sources), 0);
  for (int i = 1; i < config.num_sources; ++i) {
    // Attach relation i to a random earlier relation with a free field.
    int target = -1;
    for (int tries = 0; tries < 64 && target < 0; ++tries) {
      const int cand = static_cast<int>(rng.Uniform(static_cast<uint64_t>(i)));
      if (fields_used[static_cast<size_t>(cand)] <
          storage::kTupleKeyFields) {
        target = cand;
      }
    }
    if (target < 0) {
      // Dense degrees exhausted randomness: scan linearly.
      for (int cand = 0; cand < i && target < 0; ++cand) {
        if (fields_used[static_cast<size_t>(cand)] <
            storage::kTupleKeyFields) {
          target = cand;
        }
      }
    }
    DQS_CHECK_MSG(target >= 0,
                  "join-graph generation ran out of key fields; reduce "
                  "num_sources or the tree degree");
    JoinEdge edge;
    edge.a = target;
    edge.a_field = fields_used[static_cast<size_t>(target)]++;
    edge.b = i;
    edge.b_field = fields_used[static_cast<size_t>(i)]++;
    const double smaller = static_cast<double>(
        std::min(out.catalog.source(edge.a).relation.cardinality,
                 out.catalog.source(edge.b).relation.cardinality));
    edge.domain = PickDomain(config, rng, smaller);
    out.catalog.source(edge.a)
        .relation.key_domain[static_cast<size_t>(edge.a_field)] = edge.domain;
    out.catalog.source(edge.b)
        .relation.key_domain[static_cast<size_t>(edge.b_field)] = edge.domain;
    out.edges.push_back(edge);
  }
  return out;
}

Result<QuerySetup> GenerateBushyQuery(const GeneratorConfig& config,
                                      bool use_optimizer) {
  if (config.num_sources < 1) {
    return Status::InvalidArgument("num_sources must be >= 1");
  }
  if (use_optimizer) {
    GeneratedGraph graph = GenerateJoinGraph(config);
    Result<Plan> plan = OptimizeBushy(graph.catalog, graph.edges);
    if (!plan.ok()) return plan.status();
    QuerySetup setup;
    setup.catalog = std::move(graph.catalog);
    setup.plan = std::move(plan.value());
    return setup;
  }

  // Random bushy shaping: repeatedly join two random roots of the forest.
  Rng rng(config.seed);
  QuerySetup setup;
  setup.catalog = RandomCatalog(config, rng);

  struct Root {
    NodeId node;
    SourceId carrier;   // deep probe leaf whose fields flow upward
    double est_card;
  };
  std::vector<Root> roots;
  std::vector<int> fields_used(static_cast<size_t>(config.num_sources), 0);
  for (SourceId s = 0; s < config.num_sources; ++s) {
    NodeId node = setup.plan.AddScan(s);
    double card =
        static_cast<double>(setup.catalog.source(s).relation.cardinality);
    if (config.num_sources > 1 && rng.Bernoulli(config.filter_probability)) {
      const double sel =
          config.min_selectivity +
          rng.NextDouble() * (config.max_selectivity - config.min_selectivity);
      node = setup.plan.AddFilter(node, sel);
      card *= sel;
    }
    roots.push_back({node, s, card});
  }

  // Takes the carrier's next free key field; once the four slots are
  // exhausted the last field is reused (its domain gets overwritten, which
  // shifts that earlier join's effective selectivity but never its
  // correctness — see the header's note on deep probe chains).
  auto take_field = [&](SourceId carrier) {
    int& used = fields_used[static_cast<size_t>(carrier)];
    if (used < storage::kTupleKeyFields) return used++;
    return storage::kTupleKeyFields - 1;
  };

  while (roots.size() > 1) {
    // Prefer pairs whose carriers both have free key fields; fall back to
    // field reuse when the shape has depleted them.
    size_t i = 0, j = 0;
    bool oriented = false;
    size_t bi = 0, pi = 0;
    for (int tries = 0; tries < 128 && !oriented; ++tries) {
      i = static_cast<size_t>(rng.Uniform(roots.size()));
      j = static_cast<size_t>(rng.Uniform(roots.size()));
      if (i == j) continue;
      const bool i_free = fields_used[static_cast<size_t>(
                              roots[i].carrier)] < storage::kTupleKeyFields;
      const bool j_free = fields_used[static_cast<size_t>(
                              roots[j].carrier)] < storage::kTupleKeyFields;
      if (tries < 96 && (!i_free || !j_free)) continue;
      // Random build/probe orientation.
      if (rng.Bernoulli(0.5)) {
        bi = i;
        pi = j;
      } else {
        bi = j;
        pi = i;
      }
      oriented = true;
    }
    if (!oriented) {
      // Degenerate randomness (e.g. two roots left, i==j repeatedly).
      bi = 0;
      pi = 1;
    }
    const Root build = roots[bi];
    const Root probe = roots[pi];
    const int bf = take_field(build.carrier);
    const int pf = take_field(probe.carrier);
    const int64_t domain = PickDomain(config, rng, build.est_card);
    setup.catalog.source(build.carrier)
        .relation.key_domain[static_cast<size_t>(bf)] = domain;
    setup.catalog.source(probe.carrier)
        .relation.key_domain[static_cast<size_t>(pf)] = domain;

    Root merged;
    merged.node = setup.plan.AddHashJoin(build.node, probe.node, bf, pf);
    merged.carrier = probe.carrier;
    merged.est_card =
        probe.est_card * (build.est_card / static_cast<double>(domain));
    // Erase the two roots (higher index first) and push the merge.
    if (bi < pi) std::swap(bi, pi);
    roots.erase(roots.begin() + static_cast<long>(bi));
    roots.erase(roots.begin() + static_cast<long>(pi));
    roots.push_back(merged);
  }
  setup.plan.SetRoot(roots.front().node);
  DQS_RETURN_IF_ERROR(setup.plan.Validate(setup.catalog));
  return setup;
}

}  // namespace dqsched::plan
