// Pipeline-chain decomposition of a logical plan.
//
// "A QEP can be decomposed into a set of maximum pipeline chains. A
// pipeline chain (PC) is the maximal set of physical operators linked by
// pipelinable edges. Blocking edges induce dependency constraints between
// PCs." (paper Section 2.2). Each chain starts at a scan, flows through
// filters and hash-join probes, and ends either at an *operand sink*
// (feeding the build side of a parent join across a blocking edge — the
// paper's implicit `mat`) or at the *result sink* (query output).
//
// The compiled form is what the scheduler (DQS), processor (DQP), and
// optimizer (DQO) operate on.

#ifndef DQSCHED_PLAN_COMPILED_PLAN_H_
#define DQSCHED_PLAN_COMPILED_PLAN_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/ids.h"
#include "common/status.h"
#include "plan/plan_node.h"
#include "sim/cost_model.h"
#include "wrapper/catalog.h"

namespace dqsched::plan {

enum class ChainOpKind { kFilter, kProbe };

/// One pipelined physical operator within a chain.
struct ChainOp {
  ChainOpKind kind = ChainOpKind::kFilter;
  /// Originating plan node. For filters this also identifies the
  /// deterministic pseudo-predicate, so every strategy and the reference
  /// executor filter identically.
  NodeId node = kInvalidId;
  // kFilter
  double selectivity = 1.0;
  // kProbe
  JoinId join = kInvalidId;
  int probe_key_field = 0;
};

/// Static description of one pipeline chain.
struct ChainInfo {
  ChainId id = kInvalidId;
  std::string name;
  /// Remote source feeding the chain head.
  SourceId source = kInvalidId;
  /// Pipelined operators, applied in order to each source tuple.
  std::vector<ChainOp> ops;
  /// True for the single chain whose sink is the query result.
  bool is_result = false;
  /// When !is_result: the join whose build operand this chain produces.
  JoinId sink_join = kInvalidId;
  /// Key field the operand will be hashed on (a field of this chain's
  /// carrier relation).
  int build_key_field = 0;
  /// Chains that directly block this one: the operand producers of this
  /// chain's probe ops ("p1 blocks p2" of paper Section 4.1).
  std::vector<ChainId> blockers;

  // --- Annotations (filled by Annotate(); estimates, not exact) ----------
  double est_input_card = 0.0;
  double est_output_card = 0.0;
  /// c_p: mediator CPU per source tuple, nanoseconds (receive + operator
  /// work amortized over expected fanouts).
  double est_cpu_per_tuple_ns = 0.0;
  /// One-time CPU when the chain opens (building hash indexes over its
  /// probe operands), nanoseconds.
  double est_open_cpu_ns = 0.0;
  /// Hard memory requirement while the chain runs: the hash
  /// tables/operands of every join it probes (paper: sum of mem(op)).
  double est_mem_bytes = 0.0;
  /// Soft (spillable) memory: this chain's own operand accumulation.
  double est_sink_mem_bytes = 0.0;
};

/// A fully decomposed plan.
struct CompiledPlan {
  std::vector<ChainInfo> chains;
  ChainId result_chain = kInvalidId;
  int num_joins = 0;
  /// join id -> chain producing its build operand.
  std::vector<ChainId> operand_of_join;
  /// join id -> key field the operand is hashed on.
  std::vector<int> join_build_field;

  int num_chains() const { return static_cast<int>(chains.size()); }
  const ChainInfo& chain(ChainId id) const {
    return chains[static_cast<size_t>(id)];
  }

  // --- Closure index (filled by Compile() via BuildClosureIndex) --------
  // Flattened transitive closure of the blocker DAG in CSR layout: chain
  // c's entries occupy [offset[c], offset[c+1]) of the arena, sorted by
  // ascending chain id. ancestors*(c) must all finish before c becomes
  // C-schedulable; descendants*(c) are the chains c transitively gates
  // (its transitive dependents). The scheduler's hot path reads these
  // spans; the allocating DFS Ancestors() below stays as the reference
  // implementation for the auditor and the randomized equivalence test.
  std::vector<int32_t> anc_offset;
  std::vector<ChainId> anc_arena;
  std::vector<int32_t> desc_offset;
  std::vector<ChainId> desc_arena;

  bool HasClosureIndex() const {
    return anc_offset.size() == chains.size() + 1;
  }
  /// ancestors*(id), ascending. Requires HasClosureIndex().
  std::span<const ChainId> AncestorsOf(ChainId id) const {
    const auto i = static_cast<size_t>(id);
    return {anc_arena.data() + anc_offset[i],
            static_cast<size_t>(anc_offset[i + 1] - anc_offset[i])};
  }
  /// descendants*(id) — the chains transitively blocked by `id` —
  /// ascending. Requires HasClosureIndex().
  std::span<const ChainId> TransitiveDependentsOf(ChainId id) const {
    const auto i = static_cast<size_t>(id);
    return {desc_arena.data() + desc_offset[i],
            static_cast<size_t>(desc_offset[i + 1] - desc_offset[i])};
  }
  /// |descendants*(id)|: the DQS's unblocking-power tie-breaker, as a
  /// table read instead of an O(chains * edges) DFS sweep.
  int NumTransitiveDependents(ChainId id) const {
    const auto i = static_cast<size_t>(id);
    return desc_offset[i + 1] - desc_offset[i];
  }

  /// (Re)builds the closure index from `chains[*].blockers`. Requires an
  /// acyclic blocker relation (always true for compiled plans; hand-built
  /// cyclic plans must not call this).
  void BuildClosureIndex();
  /// Cross-checks the index against the reference DFS (Ancestors());
  /// Internal error naming the first mismatching chain otherwise.
  Status ValidateClosureIndex() const;

  /// Transitive closure of the blocker relation for `id` (the paper's
  /// ancestors*(p)). Reference implementation: allocating DFS + sort.
  /// Hot paths must use AncestorsOf() (enforced by dqs_lint).
  std::vector<ChainId> Ancestors(ChainId id) const;

  /// The execution order of the classical iterator model: for each join,
  /// the build operand's chain runs to completion before the probe chain
  /// starts; recursively, left (build) to right (probe). Used by SEQ and by
  /// MA's phase 2.
  std::vector<ChainId> IteratorModelOrder() const;
};

/// Decomposes a validated plan into pipeline chains.
Result<CompiledPlan> Compile(const Plan& plan, const wrapper::Catalog& catalog);

/// Fills the annotation fields of every chain from catalog statistics and
/// the cost model. Estimated fanout of a probe = est operand cardinality /
/// key domain of the probe field.
Status Annotate(CompiledPlan* compiled, const wrapper::Catalog& catalog,
                const sim::CostModel& cost);

}  // namespace dqsched::plan

#endif  // DQSCHED_PLAN_COMPILED_PLAN_H_
