// Logical query execution plans (QEPs).
//
// A QEP is an operator tree with two kinds of edges (paper Section 2.2):
// *blocking* (the consumer needs the producer's entire output first — the
// build input of a hash join) and *pipelinable* (tuple-at-a-time — the
// probe input, filters, scans). Materialization before blocking edges is
// implicit: compilation inserts an operand sink at every blocking edge.
//
// Supported operators: Scan (one per remote source), Filter (deterministic
// pseudo-predicate with a configurable selectivity), and HashJoin (binary,
// asymmetric: blocking build input, pipelinable probe input), matching the
// paper's "classical query execution plans with binary, asymmetric
// relational operators".

#ifndef DQSCHED_PLAN_PLAN_NODE_H_
#define DQSCHED_PLAN_PLAN_NODE_H_

#include <string>
#include <vector>

#include "common/ids.h"
#include "common/status.h"
#include "wrapper/catalog.h"

namespace dqsched::plan {

enum class OpType { kScan, kFilter, kHashJoin };

const char* OpTypeName(OpType type);

/// One node of the logical plan tree.
struct PlanNode {
  NodeId id = kInvalidId;
  OpType type = OpType::kScan;

  // kScan
  SourceId source = kInvalidId;

  // kFilter
  double selectivity = 1.0;
  NodeId input = kInvalidId;

  // kHashJoin: equi-join on build.keys[build_key_field] ==
  // probe.keys[probe_key_field]. The build edge is blocking, the probe
  // edge pipelinable.
  NodeId build = kInvalidId;
  NodeId probe = kInvalidId;
  int build_key_field = 0;
  int probe_key_field = 0;
};

/// An immutable-after-construction logical plan. Build with the Add*
/// methods bottom-up, set the root, then Validate against a catalog.
class Plan {
 public:
  /// Adds a scan of `source`; returns the node id.
  NodeId AddScan(SourceId source);
  /// Adds a filter with the given selectivity over `input`.
  NodeId AddFilter(NodeId input, double selectivity);
  /// Adds a hash join; `build` is the blocking side.
  NodeId AddHashJoin(NodeId build, NodeId probe, int build_key_field,
                     int probe_key_field);

  void SetRoot(NodeId root) { root_ = root; }
  NodeId root() const { return root_; }

  int size() const { return static_cast<int>(nodes_.size()); }
  const PlanNode& node(NodeId id) const;

  /// Structural validation: the nodes form a tree rooted at root(), every
  /// scan references a catalog source, no source is scanned twice (each
  /// wrapper feeds exactly one queue), selectivities are in [0,1], key
  /// fields are in range.
  Status Validate(const wrapper::Catalog& catalog) const;

  /// Compact single-line rendering, e.g. "HJ(HJ(A,B),C)" — for logs/tests.
  std::string ToString(const wrapper::Catalog& catalog) const;

 private:
  NodeId Add(PlanNode node);

  std::vector<PlanNode> nodes_;
  NodeId root_ = kInvalidId;
};

}  // namespace dqsched::plan

#endif  // DQSCHED_PLAN_PLAN_NODE_H_
