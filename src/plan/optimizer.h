// A classical dynamic-programming join-order optimizer producing bushy
// plans — the compile-time half of the paper's architecture ("The query
// optimizer first generates an 'optimal' QEP ... Bushy plans are the most
// general and the most appealing", Section 2.2). The mediator's dynamic
// machinery then schedules whatever this produces.
//
// Scope: acyclic (tree-shaped) join graphs over catalog relations, cost
// model C_out (sum of intermediate result cardinalities), exhaustive DP
// over connected sub-graphs. Tracks the *carrier* relation of every
// sub-plan (the deep probe-side leaf whose attributes flow upward) so that
// every produced hash join keys on attributes actually present in its
// inputs — the physical constraint dqsched tuples impose.

#ifndef DQSCHED_PLAN_OPTIMIZER_H_
#define DQSCHED_PLAN_OPTIMIZER_H_

#include <vector>

#include "common/status.h"
#include "plan/plan_node.h"
#include "wrapper/catalog.h"

namespace dqsched::plan {

/// One equi-join predicate: relation a's field matches relation b's field;
/// both fields are uniform over [0, domain).
struct JoinEdge {
  SourceId a = kInvalidId;
  int a_field = 0;
  SourceId b = kInvalidId;
  int b_field = 0;
  int64_t domain = 1;
};

/// Runs the DP over `edges` (which must form a spanning tree of the
/// catalog's relations) and returns the cheapest bushy plan. Practical up
/// to ~14 relations.
Result<Plan> OptimizeBushy(const wrapper::Catalog& catalog,
                           const std::vector<JoinEdge>& edges);

/// Estimated C_out cost of an arbitrary validated plan under the textbook
/// cardinality model (used by tests to compare optimizer output against
/// alternatives).
double EstimatePlanCost(const Plan& plan, const wrapper::Catalog& catalog);

}  // namespace dqsched::plan

#endif  // DQSCHED_PLAN_OPTIMIZER_H_
