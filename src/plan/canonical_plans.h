// Ready-made query setups: the paper's experimental plan (Figure 5,
// reconstructed from the Section 5 text — see DESIGN.md) and small plans
// for tests and the quickstart example.

#ifndef DQSCHED_PLAN_CANONICAL_PLANS_H_
#define DQSCHED_PLAN_CANONICAL_PLANS_H_

#include "plan/plan_node.h"
#include "wrapper/catalog.h"

namespace dqsched::plan {

/// A catalog plus a validated plan over it.
struct QuerySetup {
  wrapper::Catalog catalog;
  Plan plan;
};

/// The paper's experimental query: a five-way join over six sources,
/// A..D medium (100K-200K tuples), E..F small (10K-20K), shaped so that
/// p_A blocks p_B which blocks p_F (together roughly half the work) while
/// p_C blocks nothing — the properties Section 5 discusses.
///
///   J1 = HJ(build A,      probe B)
///   J2 = HJ(build J1 out, probe F)
///   J3 = HJ(build E,      probe D)
///   J4 = HJ(build J2 out, probe J3 out)
///   J5 = HJ(build J4 out, probe C)     <- root
///
/// `scale` multiplies every cardinality (and key domain) — 1.0 is the
/// paper-size workload; smaller values make tests fast. `mean_delay_us`
/// sets every wrapper's uniform-delay mean (the paper's w_min is ~20 us).
QuerySetup PaperFigure5Query(double scale = 1.0, double mean_delay_us = 20.0);

/// HJ(build A, probe B): one join, two sources; the smallest interesting
/// setup for unit tests and the quickstart.
QuerySetup TinyTwoSourceQuery(int64_t card_a = 2000, int64_t card_b = 4000,
                              double mean_delay_us = 20.0);

/// A three-source right-deep chain HJ(build A, probe HJ(build B, probe C))
/// exercising transitive blocking.
QuerySetup ChainThreeSourceQuery(double mean_delay_us = 20.0);

}  // namespace dqsched::plan

#endif  // DQSCHED_PLAN_CANONICAL_PLANS_H_
