#include "comm/rate_estimator.h"

#include <algorithm>

namespace dqsched::comm {

void RateEstimator::OnArrival(SimTime t) {
  const double gap = static_cast<double>(t - last_arrival_);
  last_arrival_ = t;
  ++samples_;
  if (samples_ == 1) {
    ewma_ns_ = gap;
  } else {
    ewma_ns_ += alpha_ * (gap - ewma_ns_);
  }
}

double RateEstimator::MeanInterArrivalNs() const {
  const double est = samples_ >= warmup_ ? ewma_ns_ : prior_ns_;
  return std::max(est, 1.0);
}

}  // namespace dqsched::comm
