#include "comm/rate_estimator.h"

#include <algorithm>

namespace dqsched::comm {

void RateEstimator::OnArrivals(const SimTime* ts, int64_t n) {
  // Locals keep the loop in registers; the per-sample float operations and
  // their order are exactly those of the historical one-arrival update, so
  // the resulting estimate is bit-identical for any run partitioning.
  SimTime last = last_arrival_;
  double ewma = ewma_ns_;
  int64_t samples = samples_;
  for (int64_t i = 0; i < n; ++i) {
    const double gap = static_cast<double>(ts[i] - last);
    last = ts[i];
    ++samples;
    if (samples == 1) {
      ewma = gap;
    } else {
      ewma += alpha_ * (gap - ewma);
    }
  }
  last_arrival_ = last;
  ewma_ns_ = ewma;
  samples_ = samples;
}

double RateEstimator::MeanInterArrivalNs() const {
  const double est = samples_ >= warmup_ ? ewma_ns_ : prior_ns_;
  return std::max(est, 1.0);
}

}  // namespace dqsched::comm
