// Bounded per-wrapper tuple queue with window-protocol semantics.
//
// "The query engine ... creates a queue of a given size in order to buffer
// the received tuples. ... If the relevant destination queue is full,
// sub-query processing at the wrapper is suspended" (paper Section 2.1).
// The queue itself is a plain bounded ring buffer; suspension/resumption
// lives in SimWrapper + CommManager.

#ifndef DQSCHED_COMM_TUPLE_QUEUE_H_
#define DQSCHED_COMM_TUPLE_QUEUE_H_

#include <cstdint>
#include <deque>

#include "common/macros.h"
#include "storage/tuple.h"

namespace dqsched::comm {

/// Bounded FIFO of tuples with producer-close (end of stream) and lossless
/// sequence accounting.
class TupleQueue {
 public:
  explicit TupleQueue(int64_t capacity) : capacity_(capacity) {
    DQS_CHECK_MSG(capacity > 0, "queue capacity must be > 0");
  }

  int64_t capacity() const { return capacity_; }
  int64_t size() const { return static_cast<int64_t>(buffer_.size()); }
  bool Empty() const { return buffer_.empty(); }
  bool Full() const { return size() >= capacity_; }

  /// Enqueues one tuple. Aborts when full or closed — flow control must be
  /// enforced by the producer.
  void Push(const storage::Tuple& t) {
    DQS_CHECK_MSG(!Full(), "push into full queue");
    DQS_CHECK_MSG(!producer_closed_, "push into closed queue");
    buffer_.push_back(t);
    ++pushed_;
  }

  /// Dequeues up to `max` tuples into `out`; returns the count.
  int64_t PopBatch(storage::Tuple* out, int64_t max) {
    int64_t n = 0;
    while (n < max && !buffer_.empty()) {
      out[n++] = buffer_.front();
      buffer_.pop_front();
    }
    popped_ += n;
    return n;
  }

  /// Producer signals it will deliver nothing more.
  void CloseProducer() { producer_closed_ = true; }
  bool producer_closed() const { return producer_closed_; }

  /// No data now and none ever coming.
  bool Exhausted() const { return producer_closed_ && buffer_.empty(); }

  /// Lossless-delivery accounting (invariant tests).
  int64_t total_pushed() const { return pushed_; }
  int64_t total_popped() const { return popped_; }

 private:
  int64_t capacity_;
  std::deque<storage::Tuple> buffer_;
  bool producer_closed_ = false;
  int64_t pushed_ = 0;
  int64_t popped_ = 0;
};

}  // namespace dqsched::comm

#endif  // DQSCHED_COMM_TUPLE_QUEUE_H_
