// Bounded per-wrapper tuple queue with window-protocol semantics.
//
// "The query engine ... creates a queue of a given size in order to buffer
// the received tuples. ... If the relevant destination queue is full,
// sub-query processing at the wrapper is suspended" (paper Section 2.1).
// The queue itself is a plain bounded ring buffer; suspension/resumption
// lives in SimWrapper + CommManager.
//
// Layout: power-of-two storage indexed by monotonically increasing absolute
// counters (`pushed_`, `popped_`) masked into the ring. The counters double
// as the lossless-delivery accounting the invariant auditor checks, and the
// bulk PushBatch/PopBatch move spans with at most two memcpy segments
// (storage::Tuple is trivially copyable).

#ifndef DQSCHED_COMM_TUPLE_QUEUE_H_
#define DQSCHED_COMM_TUPLE_QUEUE_H_

#include <cstdint>
#include <cstring>
#include <type_traits>
#include <vector>

#include "common/macros.h"
#include "storage/tuple.h"

namespace dqsched::comm {

static_assert(std::is_trivially_copyable_v<storage::Tuple>,
              "ring-buffer transport memcpys tuples");

/// Bounded FIFO of tuples with producer-close (end of stream) and lossless
/// sequence accounting.
class TupleQueue {
 public:
  explicit TupleQueue(int64_t capacity) : capacity_(capacity) {
    DQS_CHECK_MSG(capacity > 0, "queue capacity must be > 0");
    // Storage rounds up to a power of two so positions are `counter & mask`;
    // `capacity_` still bounds occupancy at the requested (exact) size.
    int64_t storage = 1;
    while (storage < capacity) storage <<= 1;
    mask_ = storage - 1;
    ring_.resize(static_cast<size_t>(storage));
  }

  int64_t capacity() const { return capacity_; }
  int64_t size() const { return pushed_ - popped_; }
  bool Empty() const { return pushed_ == popped_; }
  bool Full() const { return size() >= capacity_; }
  /// Free slots before the producer must suspend.
  int64_t SpaceLeft() const { return capacity_ - size(); }

  /// Enqueues a contiguous span of `n` tuples. Aborts when the span does not
  /// fit or the queue is closed — flow control must be enforced by the
  /// producer (check SpaceLeft() first).
  void PushBatch(const storage::Tuple* src, int64_t n) {
    DQS_CHECK_MSG(n <= SpaceLeft(), "push of %lld into queue with %lld free",
                  static_cast<long long>(n),
                  static_cast<long long>(SpaceLeft()));
    DQS_CHECK_MSG(!producer_closed_, "push into closed queue");
    const int64_t pos = pushed_ & mask_;
    const int64_t ring = mask_ + 1;
    const int64_t first = n < ring - pos ? n : ring - pos;
    std::memcpy(ring_.data() + pos, src,
                static_cast<size_t>(first) * sizeof(storage::Tuple));
    if (n > first) {
      std::memcpy(ring_.data(), src + first,
                  static_cast<size_t>(n - first) * sizeof(storage::Tuple));
    }
    pushed_ += n;
  }

  /// Enqueues one tuple. Bulk producers must use PushBatch (see dqs_lint);
  /// this remains for tests and single-tuple corner cases.
  void Push(const storage::Tuple& t) { PushBatch(&t, 1); }

  /// Dequeues up to `max` tuples into `out`; returns the count.
  int64_t PopBatch(storage::Tuple* out, int64_t max) {
    int64_t n = size() < max ? size() : max;
    if (n <= 0) return 0;
    const int64_t pos = popped_ & mask_;
    const int64_t ring = mask_ + 1;
    const int64_t first = n < ring - pos ? n : ring - pos;
    std::memcpy(out, ring_.data() + pos,
                static_cast<size_t>(first) * sizeof(storage::Tuple));
    if (n > first) {
      std::memcpy(out + first, ring_.data(),
                  static_cast<size_t>(n - first) * sizeof(storage::Tuple));
    }
    popped_ += n;
    return n;
  }

  /// Producer signals it will deliver nothing more.
  void CloseProducer() { producer_closed_ = true; }
  bool producer_closed() const { return producer_closed_; }

  /// No data now and none ever coming.
  bool Exhausted() const { return producer_closed_ && Empty(); }

  /// Lossless-delivery accounting (invariant tests). The absolute ring
  /// counters are the conservation counters: pushed == popped + size always.
  int64_t total_pushed() const { return pushed_; }
  int64_t total_popped() const { return popped_; }

 private:
  int64_t capacity_;
  int64_t mask_;
  std::vector<storage::Tuple> ring_;
  bool producer_closed_ = false;
  int64_t pushed_ = 0;
  int64_t popped_ = 0;
};

}  // namespace dqsched::comm

#endif  // DQSCHED_COMM_TUPLE_QUEUE_H_
