#include "comm/tuple_queue.h"

// TupleQueue is header-only; this file anchors the header in the build.
