#include "comm/comm_manager.h"

#include "common/macros.h"

namespace dqsched::comm {

void CommManager::AddSource(std::unique_ptr<wrapper::SimWrapper> w,
                            double prior_wait_ns) {
  DQS_CHECK_MSG(w->id() == num_sources(),
                "sources must be added in id order (got %d, expected %d)",
                w->id(), num_sources());
  if (config_.serial_transport) w->set_serial_delivery(true);
  wrappers_.push_back(std::move(w));
  queues_.push_back(std::make_unique<TupleQueue>(config_.queue_capacity));
  auto est = std::make_unique<RateEstimator>(config_.estimator_alpha);
  est->SetPrior(prior_wait_ns);
  estimators_.push_back(std::move(est));
  snapshots_.push_back(PlanSnapshot{prior_wait_ns, 0});
  heap_key_.push_back(kSimTimeNever);
  const size_t i = wrappers_.size() - 1;
  if (wrappers_[i]->Exhausted()) {
    // Empty relation: the stream closes without any push (previously done
    // lazily by the first pump).
    queues_[i]->CloseProducer();
  } else {
    SyncSource(i);
  }
}

void CommManager::SyncSource(size_t i) {
  const SimTime key = wrappers_[i]->NextArrival();
  if (key == heap_key_[i]) return;
  heap_key_[i] = key;
  if (key != kSimTimeNever) heap_.emplace(key, static_cast<int>(i));
}

void CommManager::PumpSource(size_t i, SimTime now) {
  auto& q = *queues_[i];
  const int64_t before = q.total_pushed();
  wrappers_[i]->PumpInto(q, now, estimators_[i].get());
  if (q.total_pushed() != before) ++est_version_;
  SyncSource(i);
}

void CommManager::PumpAll(SimTime now) {
  while (!heap_.empty() && heap_.top().first <= now) {
    const auto [key, i] = heap_.top();
    heap_.pop();
    if (key != heap_key_[static_cast<size_t>(i)]) continue;  // stale entry
    PumpSource(static_cast<size_t>(i), now);
  }
}

int64_t CommManager::Pop(SourceId source, SimTime now, storage::Tuple* out,
                         int64_t max) {
  const size_t i = static_cast<size_t>(source);
  auto& w = *wrappers_[i];
  auto& q = *queues_[i];
  if (w.NextArrival() <= now) PumpSource(i, now);
  const int64_t n = q.PopBatch(out, max);
  // Draining may unblock a suspended producer: its pending tuple enters at
  // the drain time.
  if (w.Suspended() || w.NextArrival() <= now) PumpSource(i, now);
  return n;
}

int64_t CommManager::Available(SourceId source, SimTime now) {
  const size_t i = static_cast<size_t>(source);
  // A pump is a no-op unless an arrival is due (a suspended wrapper's
  // NextArrival is kSimTimeNever, and it only resumes inside Pop).
  if (wrappers_[i]->NextArrival() <= now) PumpSource(i, now);
  return queues_[i]->size();
}

bool CommManager::SourceExhausted(SourceId source) const {
  return wrappers_[static_cast<size_t>(source)]->Exhausted() &&
         queues_[static_cast<size_t>(source)]->Empty();
}

SimTime CommManager::NextArrival(SourceId source) const {
  return wrappers_[static_cast<size_t>(source)]->NextArrival();
}

double CommManager::EstimatedWaitNs(SourceId source) const {
  return estimators_[static_cast<size_t>(source)]->MeanInterArrivalNs();
}

bool CommManager::EstimateWarm(SourceId source) const {
  return estimators_[static_cast<size_t>(source)]->warm();
}

int64_t CommManager::RemainingTuples(SourceId source) const {
  return wrappers_[static_cast<size_t>(source)]->remaining() +
         queues_[static_cast<size_t>(source)]->size();
}

void CommManager::MarkPlanned(SimTime) {
  for (size_t i = 0; i < estimators_.size(); ++i) {
    snapshots_[i].wait_ns = estimators_[i]->MeanInterArrivalNs();
    snapshots_[i].samples = estimators_[i]->samples();
    snapshots_[i].warm = estimators_[i]->warm();
  }
  ++est_version_;  // snapshots changed: invalidate the memoized verdict
}

bool CommManager::RateChangedSincePlan(SimTime now) {
  // The verdict below is a pure function of estimator states, snapshots,
  // and the cooldown gate. When nothing was delivered and no snapshot was
  // taken since a *full* evaluation that returned false, it cannot have
  // flipped: the loops see identical state, and the cooldown gate only
  // ever suppresses (it was passed in that evaluation, and the elapsed
  // time since last_signal_ has only grown).
  if (memo_full_eval_ && est_version_ == memo_version_) return false;
  // Warm-up transitions are exempt from the cooldown: each fires at most
  // once per source, and deferring them would delay the scheduler's first
  // informed degradation decisions.
  for (size_t i = 0; i < estimators_.size(); ++i) {
    if (wrappers_[i]->Exhausted()) continue;
    // A source planned on its prior has since produced real observations:
    // the plan's estimates are stale by construction.
    if (!snapshots_[i].warm && estimators_[i]->warm()) {
      last_signal_ = now;
      ++rate_change_signals_;
      memo_full_eval_ = false;
      return true;
    }
  }
  if (last_signal_ >= 0 && now - last_signal_ < config_.rate_change_cooldown) {
    // Suppressed before the ratio loop ran: not a full evaluation.
    memo_full_eval_ = false;
    return false;
  }
  for (size_t i = 0; i < estimators_.size(); ++i) {
    const auto& est = *estimators_[i];
    if (wrappers_[i]->Exhausted()) continue;
    if (est.samples() - snapshots_[i].samples <
        config_.rate_change_min_samples) {
      continue;
    }
    const double ref = snapshots_[i].wait_ns;
    const double cur = est.MeanInterArrivalNs();
    if (cur > ref * config_.rate_change_ratio ||
        cur < ref / config_.rate_change_ratio) {
      last_signal_ = now;
      ++rate_change_signals_;
      memo_full_eval_ = false;
      return true;
    }
  }
  memo_version_ = est_version_;
  memo_full_eval_ = true;
  return false;
}

}  // namespace dqsched::comm
