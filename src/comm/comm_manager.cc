#include "comm/comm_manager.h"

#include "common/macros.h"

namespace dqsched::comm {

void CommManager::AddSource(std::unique_ptr<wrapper::SimWrapper> w,
                            double prior_wait_ns) {
  DQS_CHECK_MSG(w->id() == num_sources(),
                "sources must be added in id order (got %d, expected %d)",
                w->id(), num_sources());
  wrappers_.push_back(std::move(w));
  queues_.push_back(std::make_unique<TupleQueue>(config_.queue_capacity));
  auto est = std::make_unique<RateEstimator>(config_.estimator_alpha);
  est->SetPrior(prior_wait_ns);
  estimators_.push_back(std::move(est));
  snapshots_.push_back(PlanSnapshot{prior_wait_ns, 0});
}

void CommManager::PumpAll(SimTime now) {
  for (size_t i = 0; i < wrappers_.size(); ++i) {
    wrappers_[i]->PumpInto(*queues_[i], now, estimators_[i].get());
  }
}

int64_t CommManager::Pop(SourceId source, SimTime now, storage::Tuple* out,
                         int64_t max) {
  auto& w = *wrappers_[static_cast<size_t>(source)];
  auto& q = *queues_[static_cast<size_t>(source)];
  auto* est = estimators_[static_cast<size_t>(source)].get();
  w.PumpInto(q, now, est);
  const int64_t n = q.PopBatch(out, max);
  // Draining may unblock a suspended producer: its pending tuple enters at
  // the drain time.
  w.PumpInto(q, now, est);
  return n;
}

int64_t CommManager::Available(SourceId source, SimTime now) {
  auto& w = *wrappers_[static_cast<size_t>(source)];
  auto& q = *queues_[static_cast<size_t>(source)];
  w.PumpInto(q, now, estimators_[static_cast<size_t>(source)].get());
  return q.size();
}

bool CommManager::SourceExhausted(SourceId source) const {
  return wrappers_[static_cast<size_t>(source)]->Exhausted() &&
         queues_[static_cast<size_t>(source)]->Empty();
}

SimTime CommManager::NextArrival(SourceId source) const {
  return wrappers_[static_cast<size_t>(source)]->NextArrival();
}

double CommManager::EstimatedWaitNs(SourceId source) const {
  return estimators_[static_cast<size_t>(source)]->MeanInterArrivalNs();
}

bool CommManager::EstimateWarm(SourceId source) const {
  return estimators_[static_cast<size_t>(source)]->warm();
}

int64_t CommManager::RemainingTuples(SourceId source) const {
  return wrappers_[static_cast<size_t>(source)]->remaining() +
         queues_[static_cast<size_t>(source)]->size();
}

void CommManager::MarkPlanned(SimTime) {
  for (size_t i = 0; i < estimators_.size(); ++i) {
    snapshots_[i].wait_ns = estimators_[i]->MeanInterArrivalNs();
    snapshots_[i].samples = estimators_[i]->samples();
    snapshots_[i].warm = estimators_[i]->warm();
  }
}

bool CommManager::RateChangedSincePlan(SimTime now) {
  // Warm-up transitions are exempt from the cooldown: each fires at most
  // once per source, and deferring them would delay the scheduler's first
  // informed degradation decisions.
  for (size_t i = 0; i < estimators_.size(); ++i) {
    if (wrappers_[i]->Exhausted()) continue;
    // A source planned on its prior has since produced real observations:
    // the plan's estimates are stale by construction.
    if (!snapshots_[i].warm && estimators_[i]->warm()) {
      last_signal_ = now;
      ++rate_change_signals_;
      return true;
    }
  }
  if (last_signal_ >= 0 && now - last_signal_ < config_.rate_change_cooldown) {
    return false;
  }
  for (size_t i = 0; i < estimators_.size(); ++i) {
    const auto& est = *estimators_[i];
    if (wrappers_[i]->Exhausted()) continue;
    if (est.samples() - snapshots_[i].samples <
        config_.rate_change_min_samples) {
      continue;
    }
    const double ref = snapshots_[i].wait_ns;
    const double cur = est.MeanInterArrivalNs();
    if (cur > ref * config_.rate_change_ratio ||
        cur < ref / config_.rate_change_ratio) {
      last_signal_ = now;
      ++rate_change_signals_;
      return true;
    }
  }
  return false;
}

}  // namespace dqsched::comm
