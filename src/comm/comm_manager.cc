#include "comm/comm_manager.h"

#include <algorithm>
#include <utility>

#include "common/macros.h"

namespace dqsched::comm {

void CommManager::AddSource(std::unique_ptr<wrapper::SimWrapper> w,
                            double prior_wait_ns) {
  DQS_CHECK_MSG(w->id() == num_sources(),
                "sources must be added in id order (got %d, expected %d)",
                w->id(), num_sources());
  if (config_.serial_transport) w->set_serial_delivery(true);
  wrappers_.push_back(std::move(w));
  queues_.push_back(std::make_unique<TupleQueue>(config_.queue_capacity));
  auto est = std::make_unique<RateEstimator>(config_.estimator_alpha);
  est->SetPrior(prior_wait_ns);
  estimators_.push_back(std::move(est));
  snapshots_.push_back(PlanSnapshot{prior_wait_ns, 0});
  fault_state_.emplace_back();
  heap_key_.push_back(kSimTimeNever);
  source_version_.push_back(0);
  const size_t i = wrappers_.size() - 1;
  if (wrappers_[i]->Exhausted()) {
    // Empty relation: the stream closes without any push (previously done
    // lazily by the first pump).
    queues_[i]->CloseProducer();
  } else {
    SyncSource(i);
  }
}

void CommManager::StartSource(SourceId source, SimTime now) {
  const size_t i = static_cast<size_t>(source);
  wrappers_[i]->Start(now);
  ++source_version_[i];
  // Silence is measured from admission, not query start, or a long-queued
  // query would join already suspected.
  fault_state_[i].last_arrival = now;
  SyncSource(i);
}

void CommManager::SyncSource(size_t i) {
  const SimTime key = wrappers_[i]->NextArrival();
  if (key == heap_key_[i]) return;
  heap_key_[i] = key;
  if (key != kSimTimeNever) heap_.emplace(key, static_cast<int>(i));
}

void CommManager::PumpSource(size_t i, SimTime now) {
  auto& q = *queues_[i];
  const int64_t before = q.total_pushed();
  const SimTime arrival_before = wrappers_[i]->NextArrival();
  wrappers_[i]->PumpInto(q, now, estimators_[i].get());
  if (q.total_pushed() != before) {
    ++est_version_;
    ++source_version_[i];
    if (config_.failure_detection) OnDelivery(i);
  }
  if (wrappers_[i]->has_faults()) {
    IngestReplayWindows(i);
    // A replayed duplicate run at the queue head will never be consumed,
    // so drop it as soon as it is delivered. Waiting for a consumer Pop
    // can deadlock: a producer suspended on a queue holding only
    // duplicates has nothing fresh to offer, so no consumer ever pops,
    // and the queue never drains. Discarding may free capacity, so keep
    // pumping while the producer has more to deliver right now.
    while (DiscardDupPrefix(i) && wrappers_[i]->Suspended()) {
      const int64_t b = q.total_pushed();
      wrappers_[i]->PumpInto(q, now, estimators_[i].get());
      if (q.total_pushed() == b) break;
      ++est_version_;
      ++source_version_[i];
      if (config_.failure_detection) OnDelivery(i);
      IngestReplayWindows(i);
    }
  }
  // A pump can move NextArrival with zero deliveries — the window protocol
  // suspending the producer on a full queue flips it to kSimTimeNever.
  // Version-guarded arrival caches (SourceVersion's contract covers
  // NextArrival) must see that transition or they would keep stalling on
  // the stale pre-suspension arrival time forever.
  if (wrappers_[i]->NextArrival() != arrival_before) {
    ++source_version_[i];
  }
  SyncSource(i);
}

void CommManager::PumpAll(SimTime now) {
  while (!heap_.empty() && heap_.top().first <= now) {
    const auto [key, i] = heap_.top();
    heap_.pop();
    if (key != heap_key_[static_cast<size_t>(i)]) continue;  // stale entry
    PumpSource(static_cast<size_t>(i), now);
  }
}

int64_t CommManager::Pop(SourceId source, SimTime now, storage::Tuple* out,
                         int64_t max) {
  const size_t i = static_cast<size_t>(source);
  auto& w = *wrappers_[i];
  auto& q = *queues_[i];
  if (w.NextArrival() <= now) PumpSource(i, now);
  const int64_t n = fault_state_[i].windows.empty()
                        ? q.PopBatch(out, max)
                        : PopDeduped(i, out, max);
  if (n > 0) ++source_version_[i];
  // Draining may unblock a suspended producer: its pending tuple enters at
  // the drain time.
  if (w.Suspended() || w.NextArrival() <= now) PumpSource(i, now);
  return n;
}

int64_t CommManager::Available(SourceId source, SimTime now) {
  const size_t i = static_cast<size_t>(source);
  // A pump is a no-op unless an arrival is due (a suspended wrapper's
  // NextArrival is kSimTimeNever, and it only resumes inside Pop).
  if (wrappers_[i]->NextArrival() <= now) PumpSource(i, now);
  return FreshInQueue(i);
}

bool CommManager::SourceExhausted(SourceId source) const {
  const size_t i = static_cast<size_t>(source);
  // An abandoned source's stream is over from the consumer's perspective
  // even though its wrapper never produced everything; trailing replay
  // duplicates left in the queue don't count as consumable.
  return (wrappers_[i]->Exhausted() || fault_state_[i].abandoned) &&
         FreshInQueue(i) == 0;
}

SimTime CommManager::NextArrival(SourceId source) const {
  return wrappers_[static_cast<size_t>(source)]->NextArrival();
}

double CommManager::EstimatedWaitNs(SourceId source) const {
  return estimators_[static_cast<size_t>(source)]->MeanInterArrivalNs();
}

bool CommManager::EstimateWarm(SourceId source) const {
  return estimators_[static_cast<size_t>(source)]->warm();
}

int64_t CommManager::RemainingTuples(SourceId source) const {
  const size_t i = static_cast<size_t>(source);
  // An abandoned wrapper's remainder will never arrive; what's left for
  // the scheduler's n_p is only the fresh queued tail. (A merely dead
  // source still counts its remainder: the mediator doesn't know yet.)
  const int64_t upstream =
      fault_state_[i].abandoned ? 0 : wrappers_[i]->remaining();
  return upstream + FreshInQueue(i);
}

void CommManager::MarkPlanned(SimTime) {
  for (size_t i = 0; i < estimators_.size(); ++i) {
    snapshots_[i].wait_ns = estimators_[i]->MeanInterArrivalNs();
    snapshots_[i].samples = estimators_[i]->samples();
    snapshots_[i].warm = estimators_[i]->warm();
  }
  ++est_version_;  // snapshots changed: invalidate the memoized verdict
}

bool CommManager::RateChangedSincePlan(SimTime now) {
  // The verdict below is a pure function of estimator states, snapshots,
  // and the cooldown gate. When nothing was delivered and no snapshot was
  // taken since a *full* evaluation that returned false, it cannot have
  // flipped: the loops see identical state, and the cooldown gate only
  // ever suppresses (it was passed in that evaluation, and the elapsed
  // time since last_signal_ has only grown).
  if (memo_full_eval_ && est_version_ == memo_version_) return false;
  // Warm-up transitions are exempt from the cooldown: each fires at most
  // once per source, and deferring them would delay the scheduler's first
  // informed degradation decisions.
  for (size_t i = 0; i < estimators_.size(); ++i) {
    if (wrappers_[i]->Exhausted()) continue;
    // A source planned on its prior has since produced real observations:
    // the plan's estimates are stale by construction.
    if (!snapshots_[i].warm && estimators_[i]->warm()) {
      last_signal_ = now;
      last_signal_source_ = static_cast<SourceId>(i);
      ++rate_change_signals_;
      memo_full_eval_ = false;
      return true;
    }
  }
  if (last_signal_ >= 0 && now - last_signal_ < config_.rate_change_cooldown) {
    // Suppressed before the ratio loop ran: not a full evaluation.
    memo_full_eval_ = false;
    return false;
  }
  for (size_t i = 0; i < estimators_.size(); ++i) {
    const auto& est = *estimators_[i];
    if (wrappers_[i]->Exhausted()) continue;
    if (est.samples() - snapshots_[i].samples <
        config_.rate_change_min_samples) {
      continue;
    }
    const double ref = snapshots_[i].wait_ns;
    const double cur = est.MeanInterArrivalNs();
    if (cur > ref * config_.rate_change_ratio ||
        cur < ref / config_.rate_change_ratio) {
      last_signal_ = now;
      last_signal_source_ = static_cast<SourceId>(i);
      ++rate_change_signals_;
      memo_full_eval_ = false;
      return true;
    }
  }
  memo_version_ = est_version_;
  memo_full_eval_ = true;
  return false;
}

void CommManager::OnDelivery(size_t i) {
  SourceFaultState& fs = fault_state_[i];
  // The wrapper's finished_at is the virtual arrival timestamp of its last
  // delivered tuple — precise, and independent of when the pump ran.
  fs.last_arrival = wrappers_[i]->stats().finished_at;
  if (fs.health != Health::kHealthy && !fs.abandoned) {
    fs.health = Health::kHealthy;
    ++recoveries_;
    ++source_version_[i];  // SourceSuspected flipped
    fault_signals_.push_back(FaultSignal{FaultSignal::Kind::kRecovered,
                                         static_cast<SourceId>(i)});
  }
}

void CommManager::IngestReplayWindows(size_t i) {
  const std::vector<wrapper::ReplayWindow>& ws =
      wrappers_[i]->replay_windows();
  SourceFaultState& fs = fault_state_[i];
  while (fs.windows_ingested < ws.size()) {
    fs.windows.push_back(ws[fs.windows_ingested]);
    ++fs.windows_ingested;
  }
}

int64_t CommManager::PopDeduped(size_t i, storage::Tuple* out, int64_t max) {
  TupleQueue& q = *queues_[i];
  SourceFaultState& fs = fault_state_[i];
  int64_t produced = 0;
  while (produced < max) {
    DiscardDupPrefix(i);
    if (q.Empty()) break;
    // Fresh tuples up to the next pending window (or the whole queue).
    int64_t want = max - produced;
    if (!fs.windows.empty()) {
      want = std::min(want, fs.windows.front().begin - q.total_popped());
    }
    const int64_t got = q.PopBatch(out + produced, want);
    if (got == 0) break;
    produced += got;
  }
  return produced;
}

bool CommManager::DiscardDupPrefix(size_t i) {
  TupleQueue& q = *queues_[i];
  SourceFaultState& fs = fault_state_[i];
  bool discarded = false;
  for (;;) {
    // Prune windows that are entirely behind the pop cursor.
    while (!fs.windows.empty() && fs.windows.front().end <= q.total_popped()) {
      fs.windows.erase(fs.windows.begin());
    }
    if (fs.windows.empty() || q.Empty()) break;
    const int64_t pos = q.total_popped();
    if (pos < fs.windows.front().begin) break;
    // The head of the queue is a run of replayed duplicates: pop them into
    // scratch and drop them. Discards never count as consumed tuples.
    const int64_t dup = std::min(fs.windows.front().end - pos, q.size());
    if (static_cast<int64_t>(discard_scratch_.size()) < dup) {
      discard_scratch_.resize(static_cast<size_t>(dup));
    }
    const int64_t got = q.PopBatch(discard_scratch_.data(), dup);
    fs.replay_discarded += got;
    replay_discarded_total_ += got;
    if (got > 0) ++source_version_[i];
    discarded = true;
  }
  return discarded;
}

int64_t CommManager::FreshInQueue(size_t i) const {
  const TupleQueue& q = *queues_[i];
  int64_t fresh = q.size();
  for (const wrapper::ReplayWindow& w : fault_state_[i].windows) {
    const int64_t b = std::max(w.begin, q.total_popped());
    const int64_t e = std::min(w.end, q.total_pushed());
    if (e > b) fresh -= e - b;
  }
  return fresh;
}

SimDuration CommManager::SuspectTimeout(size_t i) const {
  const auto scaled = static_cast<SimDuration>(
      config_.suspect_wait_factor * estimators_[i]->MeanInterArrivalNs());
  return std::max(scaled, config_.suspect_silence_floor);
}

SimDuration CommManager::DeadTimeout(size_t i) const {
  const auto scaled = static_cast<SimDuration>(
      config_.dead_wait_factor * estimators_[i]->MeanInterArrivalNs());
  return std::max(scaled, config_.dead_silence_floor);
}

bool CommManager::WatchedForLiveness(size_t i) const {
  const SourceFaultState& fs = fault_state_[i];
  if (fs.abandoned || fs.health == Health::kDead) return false;
  // A suspended wrapper is silent because of mediator backpressure, not a
  // fault, and an exhausted one is done; neither is watched.
  return !wrappers_[i]->Exhausted() && !wrappers_[i]->Suspended();
}

void CommManager::UpdateFaultState(SimTime now) {
  if (!config_.failure_detection) return;
  for (size_t i = 0; i < wrappers_.size(); ++i) {
    if (!WatchedForLiveness(i)) continue;
    SourceFaultState& fs = fault_state_[i];
    const SimDuration silence = now - fs.last_arrival;
    if (fs.health == Health::kHealthy && silence >= SuspectTimeout(i)) {
      fs.health = Health::kSuspected;
      ++suspicions_;
      ++source_version_[i];
      fault_signals_.push_back(
          FaultSignal{FaultSignal::Kind::kDown, static_cast<SourceId>(i)});
    }
    if (fs.health == Health::kSuspected && silence >= DeadTimeout(i)) {
      fs.health = Health::kDead;
      ++declared_dead_;
      ++source_version_[i];
      fault_signals_.push_back(
          FaultSignal{FaultSignal::Kind::kDead, static_cast<SourceId>(i)});
    }
  }
}

bool CommManager::TakeFaultSignal(FaultSignal* out) {
  if (fault_signals_.empty()) return false;
  *out = fault_signals_.front();
  fault_signals_.pop_front();
  return true;
}

SimTime CommManager::NextFaultDeadline(SimTime now) const {
  if (!config_.failure_detection) return kSimTimeNever;
  SimTime next = kSimTimeNever;
  for (size_t i = 0; i < wrappers_.size(); ++i) {
    if (!WatchedForLiveness(i)) continue;
    const SourceFaultState& fs = fault_state_[i];
    SimTime t = fs.health == Health::kHealthy
                    ? fs.last_arrival + SuspectTimeout(i)
                    : fs.last_arrival + DeadTimeout(i);
    // A threshold already crossed fires on the very next detector run.
    if (t <= now) t = now + 1;
    next = std::min(next, t);
  }
  return next;
}

bool CommManager::SourceSuspected(SourceId source) const {
  return fault_state_[static_cast<size_t>(source)].health != Health::kHealthy;
}

bool CommManager::SourceDead(SourceId source) const {
  return fault_state_[static_cast<size_t>(source)].health == Health::kDead;
}

void CommManager::AbandonSource(SourceId source) {
  const size_t i = static_cast<size_t>(source);
  DQS_CHECK_MSG(fault_state_[i].health == Health::kDead,
                "abandoning source %d, which is not declared dead", source);
  CloseSource(source);
}

void CommManager::CloseSource(SourceId source) {
  const size_t i = static_cast<size_t>(source);
  SourceFaultState& fs = fault_state_[i];
  if (fs.abandoned) return;
  fs.abandoned = true;
  wrappers_[i]->Abandon();
  if (!queues_[i]->producer_closed()) queues_[i]->CloseProducer();
  SyncSource(i);       // NextArrival is now kSimTimeNever
  ++est_version_;      // the scheduler's inputs changed
  ++source_version_[i];
}

int64_t CommManager::ReplayDiscarded(SourceId source) const {
  return fault_state_[static_cast<size_t>(source)].replay_discarded;
}

void CommManager::InstallFaultSchedule(SourceId source,
                                       wrapper::FaultSchedule schedule,
                                       uint64_t seed) {
  const size_t i = static_cast<size_t>(source);
  wrappers_[i]->SetFaultSchedule(std::move(schedule), seed);
  // The schedule cannot change the first arrival (faults key off tuple
  // indices, and a held wrapper has not produced tuple 0 yet), but keep
  // the heap honest anyway.
  SyncSource(i);
}

}  // namespace dqsched::comm
