// Delivery-rate estimation.
//
// "The communication manager is responsible for computing an estimate of
// the delivery rate and signaling any significant changes" (paper Section
// 3.1). The estimator tracks an exponentially weighted moving average of
// inter-arrival times; the manager compares the live estimate against the
// snapshot taken at the last planning phase to raise RateChange events.

#ifndef DQSCHED_COMM_RATE_ESTIMATOR_H_
#define DQSCHED_COMM_RATE_ESTIMATOR_H_

#include <cstdint>

#include "common/sim_time.h"
#include "wrapper/wrapper.h"

namespace dqsched::comm {

/// EWMA of inter-arrival times with a configurable prior used until enough
/// samples arrive.
class RateEstimator final : public wrapper::ArrivalObserver {
 public:
  /// `alpha` is the EWMA weight of a new sample; `warmup` the number of
  /// samples before the estimate supersedes the prior.
  explicit RateEstimator(double alpha = 0.02, int64_t warmup = 16)
      : alpha_(alpha), warmup_(warmup) {}

  /// Sets the pre-observation estimate (what a static optimizer assumed).
  void SetPrior(double mean_ns) { prior_ns_ = mean_ns; }
  double prior_ns() const { return prior_ns_; }

  /// Feeds a run of arrival timestamps (virtual time, non-decreasing).
  /// The EWMA update sequence is identical to feeding the run one
  /// timestamp at a time — the serial-vs-bulk determinism contract.
  void OnArrivals(const SimTime* ts, int64_t n) override;

  /// Advances the reference time without sampling (backpressure-resume
  /// arrivals; see wrapper::ArrivalObserver).
  void OnArrivalSuppressed(SimTime t) override { last_arrival_ = t; }

  /// Current mean inter-arrival estimate in nanoseconds (>= 1).
  double MeanInterArrivalNs() const;

  int64_t samples() const { return samples_; }
  /// True once enough samples arrived for the estimate to supersede the
  /// prior. The scheduler defers irreversible decisions (degradation)
  /// until then.
  bool warm() const { return samples_ >= warmup_; }

 private:
  double alpha_;
  int64_t warmup_;
  double prior_ns_ = 1.0;
  double ewma_ns_ = 0.0;
  SimTime last_arrival_ = 0;
  int64_t samples_ = 0;
};

}  // namespace dqsched::comm

#endif  // DQSCHED_COMM_RATE_ESTIMATOR_H_
