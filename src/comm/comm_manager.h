// The Communication Manager (CM) of the paper's architecture (Section 3.1).
//
// Owns the simulated wrappers, their bounded tuple queues (window-protocol
// flow control), and a delivery-rate estimator per source. The query
// processor consumes exclusively through this class; the CM lazily pumps
// wrapper production up to the current virtual time, which is equivalent to
// the asynchronous producer/consumer of the paper in a single-threaded
// discrete-event setting.

#ifndef DQSCHED_COMM_COMM_MANAGER_H_
#define DQSCHED_COMM_COMM_MANAGER_H_

#include <deque>
#include <functional>
#include <memory>
#include <queue>
#include <utility>
#include <vector>

#include "comm/rate_estimator.h"
#include "comm/tuple_queue.h"
#include "common/ids.h"
#include "common/sim_time.h"
#include "storage/tuple.h"
#include "wrapper/wrapper.h"

namespace dqsched::comm {

/// Tunables of the communication layer.
struct CommConfig {
  /// Queue capacity in tuples (the "given size" of paper Section 2.1).
  int64_t queue_capacity = 1024;
  /// A source's delivery rate is "significantly changed" when the live
  /// estimate deviates from the last planning snapshot by this factor.
  double rate_change_ratio = 2.0;
  /// Minimum samples since the snapshot before a ratio-based change can be
  /// signaled.
  int64_t rate_change_min_samples = 64;
  /// Minimum virtual time between two RateChange signals (global),
  /// preventing replanning storms.
  SimDuration rate_change_cooldown = Milliseconds(50);
  /// EWMA weight for the rate estimator.
  double estimator_alpha = 0.02;
  /// Test-only: cap wrapper delivery runs at one tuple, forcing the
  /// per-tuple transport path. Observable behavior must be identical to
  /// bulk delivery (see tests/transport_determinism_test.cc).
  bool serial_transport = false;

  // --- Failure detection (fault-tolerant communication layer) ---
  /// Master switch. Mediator::Create arms it when any catalog source
  /// carries a fault schedule; with it off (the default) every detection
  /// code path is skipped, keeping fault-free runs bit-identical to
  /// builds that predate the fault layer.
  bool failure_detection = false;
  /// A silent source is suspected down once its silence exceeds this
  /// multiple of its estimated inter-arrival wait ...
  double suspect_wait_factor = 64.0;
  /// ... but never sooner than this floor (early estimates can sit on an
  /// optimistic prior; see DESIGN.md §8).
  SimDuration suspect_silence_floor = Milliseconds(50);
  /// A suspected source is declared dead once its silence exceeds this
  /// multiple of the estimated wait ...
  double dead_wait_factor = 256.0;
  /// ... with its own, much larger, floor.
  SimDuration dead_silence_floor = Milliseconds(500);
};

/// Liveness transition emitted by the failure detector; drained by the
/// query processor (Dqp::RunPhase) and surfaced as SourceDown /
/// SourceRecovered events alongside the rate-change signal.
struct FaultSignal {
  enum class Kind {
    kDown,       // silence exceeded the suspect threshold
    kDead,       // silence exceeded the declared-dead threshold
    kRecovered,  // a suspected/dead source delivered again
  };
  Kind kind = Kind::kDown;
  SourceId source = kInvalidId;
};

/// Mediator-side communication endpoint for all wrappers of one execution.
class CommManager {
 public:
  explicit CommManager(const CommConfig& config) : config_(config) {}

  CommManager(const CommManager&) = delete;
  CommManager& operator=(const CommManager&) = delete;

  /// Registers a wrapper; source ids must be added in order (0, 1, ...).
  /// `prior_wait_ns` seeds the rate estimator (the compile-time assumption).
  void AddSource(std::unique_ptr<wrapper::SimWrapper> w, double prior_wait_ns);

  int num_sources() const { return static_cast<int>(wrappers_.size()); }

  /// Releases a held wrapper at virtual time `now` (fleet admission): the
  /// source comes online as if it connected then. Bumps the source's
  /// delivery version (NextArrival flips from kSimTimeNever), seeds its
  /// liveness silence base, and re-keys the pump heap.
  void StartSource(SourceId source, SimTime now);

  /// Delivers all due production of every wrapper up to `now`. Only sources
  /// whose next arrival is <= `now` are touched: the manager keeps a
  /// min-heap over SimWrapper::NextArrival(), so an idle pump is O(1).
  void PumpAll(SimTime now);

  /// Pops up to `max` tuples of `source`, after pumping; pumps again after
  /// popping so a suspended producer resumes immediately (window protocol).
  int64_t Pop(SourceId source, SimTime now, storage::Tuple* out, int64_t max);

  /// Tuples ready for consumption right now (pumps first).
  int64_t Available(SourceId source, SimTime now);

  /// True when the wrapper has produced everything and the queue is empty.
  bool SourceExhausted(SourceId source) const;

  /// Earliest time a new tuple from `source` can appear, kSimTimeNever if
  /// exhausted or suspended-on-full-queue (consume to unblock).
  SimTime NextArrival(SourceId source) const;

  /// Current estimate of the mean inter-arrival time w of `source`.
  double EstimatedWaitNs(SourceId source) const;

  /// True once `source`'s estimate is based on observation, not the prior.
  bool EstimateWarm(SourceId source) const;

  /// Tuples of `source` not yet consumed by the engine (wrapper remainder
  /// plus queued): the scheduler's n_p.
  int64_t RemainingTuples(SourceId source) const;

  /// Snapshot all estimates; subsequent RateChangedSincePlan() calls
  /// compare against this snapshot.
  void MarkPlanned(SimTime now);

  /// True when some source's estimate deviates from the planning snapshot
  /// by more than the configured ratio (subject to warmup and cooldown),
  /// or when a source that was un-warm at the snapshot has warmed up since
  /// (initial observations supersede the compile-time prior). The trigger
  /// is recorded; the caller decides to replan.
  bool RateChangedSincePlan(SimTime now);

  int64_t rate_change_signals() const { return rate_change_signals_; }

  /// The source whose estimate triggered the most recent true verdict of
  /// RateChangedSincePlan (kInvalidId before any signal). Multi-query
  /// targeted replanning routes the replan to the queries reading it.
  SourceId LastRateChangeSource() const { return last_signal_source_; }

  /// Per-source delivery version: bumped whenever anything the scheduler's
  /// criticality function reads about `source` may have changed — pushes
  /// (which also advance the estimator and shrink the wrapper remainder),
  /// pops, replay-duplicate discards, liveness transitions, abandonment.
  /// Monotone; an unchanged version guarantees RemainingTuples,
  /// EstimatedWaitNs, SourceSuspected, and NextArrival are unchanged.
  /// Over-bumping is safe (a spurious recompute), under-bumping is not.
  uint64_t SourceVersion(SourceId source) const {
    return source_version_[static_cast<size_t>(source)];
  }

  // --- Failure detection (all no-ops / false unless armed) ---

  bool failure_detection() const { return config_.failure_detection; }

  /// Advances the per-source liveness state machine to `now`. Threshold
  /// crossings enqueue FaultSignals for TakeFaultSignal.
  void UpdateFaultState(SimTime now);

  /// Pops the oldest pending liveness transition; false when none.
  bool TakeFaultSignal(FaultSignal* out);

  /// Earliest future virtual time any watched source can cross a liveness
  /// threshold (kSimTimeNever when nothing is watched). The query
  /// processor stalls no further than this, so detection keeps pace with
  /// the virtual clock even when every stream is silent.
  SimTime NextFaultDeadline(SimTime now) const;

  /// Suspected down or declared dead (and not recovered since).
  bool SourceSuspected(SourceId source) const;
  /// Declared dead by the detector.
  bool SourceDead(SourceId source) const;

  /// Gives up on a declared-dead source (partial-result policy): the
  /// wrapper is silenced, its stream is closed, and the consumer drains
  /// whatever already arrived. Irreversible.
  void AbandonSource(SourceId source);

  /// Unconditional variant for lifecycle management (query cancellation,
  /// circuit-breaker degrade): silences the wrapper and closes the stream
  /// regardless of detector health. Irreversible; idempotent.
  void CloseSource(SourceId source);

  /// True once the source was closed/abandoned (its queue takes no more
  /// deliveries and the wrapper is silenced).
  bool SourceClosed(SourceId source) const {
    return fault_state_[static_cast<size_t>(source)].abandoned;
  }

  /// Installs a fault schedule on a held, never-pumped source (the fleet
  /// compiles storm schedules at join time, when the attempt's virtual
  /// start time is known). Forwards to SimWrapper::SetFaultSchedule.
  void InstallFaultSchedule(SourceId source, wrapper::FaultSchedule schedule,
                            uint64_t seed);

  /// Replayed duplicates discarded on pop for `source` / in total. The
  /// invariant auditor's conservation law is popped == consumed +
  /// ReplayDiscarded.
  int64_t ReplayDiscarded(SourceId source) const;
  int64_t replay_discarded_total() const { return replay_discarded_total_; }

  /// Healthy->suspected transitions observed (a flapping source counts
  /// once per episode).
  int64_t fault_suspicions() const { return suspicions_; }
  /// Suspected->dead transitions observed.
  int64_t fault_declared_dead() const { return declared_dead_; }
  /// Suspected/dead->healthy transitions observed.
  int64_t fault_recoveries() const { return recoveries_; }

  const wrapper::SimWrapper& wrapper(SourceId source) const {
    return *wrappers_[static_cast<size_t>(source)];
  }
  const TupleQueue& queue(SourceId source) const {
    return *queues_[static_cast<size_t>(source)];
  }

 private:
  struct PlanSnapshot {
    double wait_ns = 0.0;
    int64_t samples = 0;
    bool warm = false;
  };

  enum class Health { kHealthy, kSuspected, kDead };

  struct SourceFaultState {
    /// Arrival timestamp of the last delivered tuple (0 = none yet, so
    /// silence is measured from query start).
    SimTime last_arrival = 0;
    Health health = Health::kHealthy;
    bool abandoned = false;
    int64_t replay_discarded = 0;
    /// Wrapper replay windows copied so far (wrapper-side vector prefix).
    size_t windows_ingested = 0;
    /// Pending replay windows in absolute push positions, front = oldest.
    /// Disjoint and increasing; fully-popped fronts are pruned on pop.
    std::vector<wrapper::ReplayWindow> windows;
  };

  /// Pumps one source and refreshes its event-index entry.
  void PumpSource(size_t i, SimTime now);
  /// Re-keys source `i` in the arrival heap after its state changed.
  /// Stale heap entries are left behind and skipped lazily on pop.
  void SyncSource(size_t i);
  /// A delivery from source `i` landed: refresh liveness, signal recovery.
  void OnDelivery(size_t i);
  /// Copies new replay windows from the wrapper (fault runs only).
  void IngestReplayWindows(size_t i);
  /// Pop that discards replayed duplicates by absolute position.
  int64_t PopDeduped(size_t i, storage::Tuple* out, int64_t max);
  /// Drops the run of replayed duplicates at the queue head, if any.
  /// Returns whether anything was discarded (capacity may have freed).
  bool DiscardDupPrefix(size_t i);
  /// Queued tuples that are not pending replay duplicates.
  int64_t FreshInQueue(size_t i) const;
  SimDuration SuspectTimeout(size_t i) const;
  SimDuration DeadTimeout(size_t i) const;
  /// Liveness is tracked only for sources that can still deliver.
  bool WatchedForLiveness(size_t i) const;

  CommConfig config_;
  std::vector<std::unique_ptr<wrapper::SimWrapper>> wrappers_;
  std::vector<std::unique_ptr<TupleQueue>> queues_;
  std::vector<std::unique_ptr<RateEstimator>> estimators_;
  std::vector<PlanSnapshot> snapshots_;
  /// Min-heap of (next arrival, source). `heap_key_[i]` is the only live
  /// key for source i (kSimTimeNever = no live entry: exhausted or
  /// suspended); entries whose key differs are stale and skipped.
  std::priority_queue<std::pair<SimTime, int>,
                      std::vector<std::pair<SimTime, int>>, std::greater<>>
      heap_;
  std::vector<SimTime> heap_key_;
  /// Bumped whenever any estimator's sampled state may have changed;
  /// lets RateChangedSincePlan() memoize a full false evaluation.
  int64_t est_version_ = 0;
  int64_t memo_version_ = -1;
  bool memo_full_eval_ = false;
  SimTime last_signal_ = -1;
  SourceId last_signal_source_ = kInvalidId;
  int64_t rate_change_signals_ = 0;
  /// See SourceVersion().
  std::vector<uint64_t> source_version_;

  // Failure-detection state (inert unless config_.failure_detection,
  // except the replay windows, which follow the wrapper's fault schedule).
  std::vector<SourceFaultState> fault_state_;
  std::deque<FaultSignal> fault_signals_;
  /// Scratch for popping duplicates into oblivion.
  std::vector<storage::Tuple> discard_scratch_;
  int64_t suspicions_ = 0;
  int64_t declared_dead_ = 0;
  int64_t recoveries_ = 0;
  int64_t replay_discarded_total_ = 0;
};

}  // namespace dqsched::comm

#endif  // DQSCHED_COMM_COMM_MANAGER_H_
