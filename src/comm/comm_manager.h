// The Communication Manager (CM) of the paper's architecture (Section 3.1).
//
// Owns the simulated wrappers, their bounded tuple queues (window-protocol
// flow control), and a delivery-rate estimator per source. The query
// processor consumes exclusively through this class; the CM lazily pumps
// wrapper production up to the current virtual time, which is equivalent to
// the asynchronous producer/consumer of the paper in a single-threaded
// discrete-event setting.

#ifndef DQSCHED_COMM_COMM_MANAGER_H_
#define DQSCHED_COMM_COMM_MANAGER_H_

#include <functional>
#include <memory>
#include <queue>
#include <utility>
#include <vector>

#include "comm/rate_estimator.h"
#include "comm/tuple_queue.h"
#include "common/ids.h"
#include "common/sim_time.h"
#include "storage/tuple.h"
#include "wrapper/wrapper.h"

namespace dqsched::comm {

/// Tunables of the communication layer.
struct CommConfig {
  /// Queue capacity in tuples (the "given size" of paper Section 2.1).
  int64_t queue_capacity = 1024;
  /// A source's delivery rate is "significantly changed" when the live
  /// estimate deviates from the last planning snapshot by this factor.
  double rate_change_ratio = 2.0;
  /// Minimum samples since the snapshot before a ratio-based change can be
  /// signaled.
  int64_t rate_change_min_samples = 64;
  /// Minimum virtual time between two RateChange signals (global),
  /// preventing replanning storms.
  SimDuration rate_change_cooldown = Milliseconds(50);
  /// EWMA weight for the rate estimator.
  double estimator_alpha = 0.02;
  /// Test-only: cap wrapper delivery runs at one tuple, forcing the
  /// per-tuple transport path. Observable behavior must be identical to
  /// bulk delivery (see tests/transport_determinism_test.cc).
  bool serial_transport = false;
};

/// Mediator-side communication endpoint for all wrappers of one execution.
class CommManager {
 public:
  explicit CommManager(const CommConfig& config) : config_(config) {}

  CommManager(const CommManager&) = delete;
  CommManager& operator=(const CommManager&) = delete;

  /// Registers a wrapper; source ids must be added in order (0, 1, ...).
  /// `prior_wait_ns` seeds the rate estimator (the compile-time assumption).
  void AddSource(std::unique_ptr<wrapper::SimWrapper> w, double prior_wait_ns);

  int num_sources() const { return static_cast<int>(wrappers_.size()); }

  /// Delivers all due production of every wrapper up to `now`. Only sources
  /// whose next arrival is <= `now` are touched: the manager keeps a
  /// min-heap over SimWrapper::NextArrival(), so an idle pump is O(1).
  void PumpAll(SimTime now);

  /// Pops up to `max` tuples of `source`, after pumping; pumps again after
  /// popping so a suspended producer resumes immediately (window protocol).
  int64_t Pop(SourceId source, SimTime now, storage::Tuple* out, int64_t max);

  /// Tuples ready for consumption right now (pumps first).
  int64_t Available(SourceId source, SimTime now);

  /// True when the wrapper has produced everything and the queue is empty.
  bool SourceExhausted(SourceId source) const;

  /// Earliest time a new tuple from `source` can appear, kSimTimeNever if
  /// exhausted or suspended-on-full-queue (consume to unblock).
  SimTime NextArrival(SourceId source) const;

  /// Current estimate of the mean inter-arrival time w of `source`.
  double EstimatedWaitNs(SourceId source) const;

  /// True once `source`'s estimate is based on observation, not the prior.
  bool EstimateWarm(SourceId source) const;

  /// Tuples of `source` not yet consumed by the engine (wrapper remainder
  /// plus queued): the scheduler's n_p.
  int64_t RemainingTuples(SourceId source) const;

  /// Snapshot all estimates; subsequent RateChangedSincePlan() calls
  /// compare against this snapshot.
  void MarkPlanned(SimTime now);

  /// True when some source's estimate deviates from the planning snapshot
  /// by more than the configured ratio (subject to warmup and cooldown),
  /// or when a source that was un-warm at the snapshot has warmed up since
  /// (initial observations supersede the compile-time prior). The trigger
  /// is recorded; the caller decides to replan.
  bool RateChangedSincePlan(SimTime now);

  int64_t rate_change_signals() const { return rate_change_signals_; }

  const wrapper::SimWrapper& wrapper(SourceId source) const {
    return *wrappers_[static_cast<size_t>(source)];
  }
  const TupleQueue& queue(SourceId source) const {
    return *queues_[static_cast<size_t>(source)];
  }

 private:
  struct PlanSnapshot {
    double wait_ns = 0.0;
    int64_t samples = 0;
    bool warm = false;
  };

  /// Pumps one source and refreshes its event-index entry.
  void PumpSource(size_t i, SimTime now);
  /// Re-keys source `i` in the arrival heap after its state changed.
  /// Stale heap entries are left behind and skipped lazily on pop.
  void SyncSource(size_t i);

  CommConfig config_;
  std::vector<std::unique_ptr<wrapper::SimWrapper>> wrappers_;
  std::vector<std::unique_ptr<TupleQueue>> queues_;
  std::vector<std::unique_ptr<RateEstimator>> estimators_;
  std::vector<PlanSnapshot> snapshots_;
  /// Min-heap of (next arrival, source). `heap_key_[i]` is the only live
  /// key for source i (kSimTimeNever = no live entry: exhausted or
  /// suspended); entries whose key differs are stale and skipped.
  std::priority_queue<std::pair<SimTime, int>,
                      std::vector<std::pair<SimTime, int>>, std::greater<>>
      heap_;
  std::vector<SimTime> heap_key_;
  /// Bumped whenever any estimator's sampled state may have changed;
  /// lets RateChangedSincePlan() memoize a full false evaluation.
  int64_t est_version_ = 0;
  int64_t memo_version_ = -1;
  bool memo_full_eval_ = false;
  SimTime last_signal_ = -1;
  int64_t rate_change_signals_ = 0;
};

}  // namespace dqsched::comm

#endif  // DQSCHED_COMM_COMM_MANAGER_H_
