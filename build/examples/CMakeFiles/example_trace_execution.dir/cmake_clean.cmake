file(REMOVE_RECURSE
  "CMakeFiles/example_trace_execution.dir/trace_execution.cpp.o"
  "CMakeFiles/example_trace_execution.dir/trace_execution.cpp.o.d"
  "example_trace_execution"
  "example_trace_execution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_trace_execution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
