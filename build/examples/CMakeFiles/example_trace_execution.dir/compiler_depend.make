# Empty compiler generated dependencies file for example_trace_execution.
# This may be replaced when dependencies are built.
