# Empty compiler generated dependencies file for example_delay_models.
# This may be replaced when dependencies are built.
