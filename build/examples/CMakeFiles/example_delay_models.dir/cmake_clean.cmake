file(REMOVE_RECURSE
  "CMakeFiles/example_delay_models.dir/delay_models.cpp.o"
  "CMakeFiles/example_delay_models.dir/delay_models.cpp.o.d"
  "example_delay_models"
  "example_delay_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_delay_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
