# Empty compiler generated dependencies file for example_memory_limited.
# This may be replaced when dependencies are built.
