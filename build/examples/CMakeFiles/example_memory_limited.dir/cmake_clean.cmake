file(REMOVE_RECURSE
  "CMakeFiles/example_memory_limited.dir/memory_limited.cpp.o"
  "CMakeFiles/example_memory_limited.dir/memory_limited.cpp.o.d"
  "example_memory_limited"
  "example_memory_limited.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_memory_limited.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
