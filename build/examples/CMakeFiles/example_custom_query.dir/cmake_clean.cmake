file(REMOVE_RECURSE
  "CMakeFiles/example_custom_query.dir/custom_query.cpp.o"
  "CMakeFiles/example_custom_query.dir/custom_query.cpp.o.d"
  "example_custom_query"
  "example_custom_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_custom_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
