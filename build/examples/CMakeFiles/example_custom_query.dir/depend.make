# Empty dependencies file for example_custom_query.
# This may be replaced when dependencies are built.
