# Empty dependencies file for example_slow_wrapper.
# This may be replaced when dependencies are built.
