file(REMOVE_RECURSE
  "CMakeFiles/example_slow_wrapper.dir/slow_wrapper.cpp.o"
  "CMakeFiles/example_slow_wrapper.dir/slow_wrapper.cpp.o.d"
  "example_slow_wrapper"
  "example_slow_wrapper.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_slow_wrapper.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
