file(REMOVE_RECURSE
  "libdqsched.a"
)
