
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/comm/comm_manager.cc" "src/CMakeFiles/dqsched.dir/comm/comm_manager.cc.o" "gcc" "src/CMakeFiles/dqsched.dir/comm/comm_manager.cc.o.d"
  "/root/repo/src/comm/rate_estimator.cc" "src/CMakeFiles/dqsched.dir/comm/rate_estimator.cc.o" "gcc" "src/CMakeFiles/dqsched.dir/comm/rate_estimator.cc.o.d"
  "/root/repo/src/comm/tuple_queue.cc" "src/CMakeFiles/dqsched.dir/comm/tuple_queue.cc.o" "gcc" "src/CMakeFiles/dqsched.dir/comm/tuple_queue.cc.o.d"
  "/root/repo/src/common/random.cc" "src/CMakeFiles/dqsched.dir/common/random.cc.o" "gcc" "src/CMakeFiles/dqsched.dir/common/random.cc.o.d"
  "/root/repo/src/common/sim_time.cc" "src/CMakeFiles/dqsched.dir/common/sim_time.cc.o" "gcc" "src/CMakeFiles/dqsched.dir/common/sim_time.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/dqsched.dir/common/status.cc.o" "gcc" "src/CMakeFiles/dqsched.dir/common/status.cc.o.d"
  "/root/repo/src/common/table_printer.cc" "src/CMakeFiles/dqsched.dir/common/table_printer.cc.o" "gcc" "src/CMakeFiles/dqsched.dir/common/table_printer.cc.o.d"
  "/root/repo/src/core/dphj.cc" "src/CMakeFiles/dqsched.dir/core/dphj.cc.o" "gcc" "src/CMakeFiles/dqsched.dir/core/dphj.cc.o.d"
  "/root/repo/src/core/dqo.cc" "src/CMakeFiles/dqsched.dir/core/dqo.cc.o" "gcc" "src/CMakeFiles/dqsched.dir/core/dqo.cc.o.d"
  "/root/repo/src/core/dqp.cc" "src/CMakeFiles/dqsched.dir/core/dqp.cc.o" "gcc" "src/CMakeFiles/dqsched.dir/core/dqp.cc.o.d"
  "/root/repo/src/core/dqs.cc" "src/CMakeFiles/dqsched.dir/core/dqs.cc.o" "gcc" "src/CMakeFiles/dqsched.dir/core/dqs.cc.o.d"
  "/root/repo/src/core/dse_strategy.cc" "src/CMakeFiles/dqsched.dir/core/dse_strategy.cc.o" "gcc" "src/CMakeFiles/dqsched.dir/core/dse_strategy.cc.o.d"
  "/root/repo/src/core/execution_state.cc" "src/CMakeFiles/dqsched.dir/core/execution_state.cc.o" "gcc" "src/CMakeFiles/dqsched.dir/core/execution_state.cc.o.d"
  "/root/repo/src/core/fragment.cc" "src/CMakeFiles/dqsched.dir/core/fragment.cc.o" "gcc" "src/CMakeFiles/dqsched.dir/core/fragment.cc.o.d"
  "/root/repo/src/core/lwb.cc" "src/CMakeFiles/dqsched.dir/core/lwb.cc.o" "gcc" "src/CMakeFiles/dqsched.dir/core/lwb.cc.o.d"
  "/root/repo/src/core/ma_strategy.cc" "src/CMakeFiles/dqsched.dir/core/ma_strategy.cc.o" "gcc" "src/CMakeFiles/dqsched.dir/core/ma_strategy.cc.o.d"
  "/root/repo/src/core/mediator.cc" "src/CMakeFiles/dqsched.dir/core/mediator.cc.o" "gcc" "src/CMakeFiles/dqsched.dir/core/mediator.cc.o.d"
  "/root/repo/src/core/metrics.cc" "src/CMakeFiles/dqsched.dir/core/metrics.cc.o" "gcc" "src/CMakeFiles/dqsched.dir/core/metrics.cc.o.d"
  "/root/repo/src/core/multi_query.cc" "src/CMakeFiles/dqsched.dir/core/multi_query.cc.o" "gcc" "src/CMakeFiles/dqsched.dir/core/multi_query.cc.o.d"
  "/root/repo/src/core/scrambling.cc" "src/CMakeFiles/dqsched.dir/core/scrambling.cc.o" "gcc" "src/CMakeFiles/dqsched.dir/core/scrambling.cc.o.d"
  "/root/repo/src/core/seq_strategy.cc" "src/CMakeFiles/dqsched.dir/core/seq_strategy.cc.o" "gcc" "src/CMakeFiles/dqsched.dir/core/seq_strategy.cc.o.d"
  "/root/repo/src/core/strategy.cc" "src/CMakeFiles/dqsched.dir/core/strategy.cc.o" "gcc" "src/CMakeFiles/dqsched.dir/core/strategy.cc.o.d"
  "/root/repo/src/core/trace.cc" "src/CMakeFiles/dqsched.dir/core/trace.cc.o" "gcc" "src/CMakeFiles/dqsched.dir/core/trace.cc.o.d"
  "/root/repo/src/exec/chain_executor.cc" "src/CMakeFiles/dqsched.dir/exec/chain_executor.cc.o" "gcc" "src/CMakeFiles/dqsched.dir/exec/chain_executor.cc.o.d"
  "/root/repo/src/exec/chain_source.cc" "src/CMakeFiles/dqsched.dir/exec/chain_source.cc.o" "gcc" "src/CMakeFiles/dqsched.dir/exec/chain_source.cc.o.d"
  "/root/repo/src/exec/exec_context.cc" "src/CMakeFiles/dqsched.dir/exec/exec_context.cc.o" "gcc" "src/CMakeFiles/dqsched.dir/exec/exec_context.cc.o.d"
  "/root/repo/src/exec/hash_index.cc" "src/CMakeFiles/dqsched.dir/exec/hash_index.cc.o" "gcc" "src/CMakeFiles/dqsched.dir/exec/hash_index.cc.o.d"
  "/root/repo/src/exec/operand.cc" "src/CMakeFiles/dqsched.dir/exec/operand.cc.o" "gcc" "src/CMakeFiles/dqsched.dir/exec/operand.cc.o.d"
  "/root/repo/src/plan/annotator.cc" "src/CMakeFiles/dqsched.dir/plan/annotator.cc.o" "gcc" "src/CMakeFiles/dqsched.dir/plan/annotator.cc.o.d"
  "/root/repo/src/plan/canonical_plans.cc" "src/CMakeFiles/dqsched.dir/plan/canonical_plans.cc.o" "gcc" "src/CMakeFiles/dqsched.dir/plan/canonical_plans.cc.o.d"
  "/root/repo/src/plan/compiled_plan.cc" "src/CMakeFiles/dqsched.dir/plan/compiled_plan.cc.o" "gcc" "src/CMakeFiles/dqsched.dir/plan/compiled_plan.cc.o.d"
  "/root/repo/src/plan/optimizer.cc" "src/CMakeFiles/dqsched.dir/plan/optimizer.cc.o" "gcc" "src/CMakeFiles/dqsched.dir/plan/optimizer.cc.o.d"
  "/root/repo/src/plan/plan_node.cc" "src/CMakeFiles/dqsched.dir/plan/plan_node.cc.o" "gcc" "src/CMakeFiles/dqsched.dir/plan/plan_node.cc.o.d"
  "/root/repo/src/plan/query_generator.cc" "src/CMakeFiles/dqsched.dir/plan/query_generator.cc.o" "gcc" "src/CMakeFiles/dqsched.dir/plan/query_generator.cc.o.d"
  "/root/repo/src/plan/reference_executor.cc" "src/CMakeFiles/dqsched.dir/plan/reference_executor.cc.o" "gcc" "src/CMakeFiles/dqsched.dir/plan/reference_executor.cc.o.d"
  "/root/repo/src/sim/cost_model.cc" "src/CMakeFiles/dqsched.dir/sim/cost_model.cc.o" "gcc" "src/CMakeFiles/dqsched.dir/sim/cost_model.cc.o.d"
  "/root/repo/src/sim/disk.cc" "src/CMakeFiles/dqsched.dir/sim/disk.cc.o" "gcc" "src/CMakeFiles/dqsched.dir/sim/disk.cc.o.d"
  "/root/repo/src/sim/network.cc" "src/CMakeFiles/dqsched.dir/sim/network.cc.o" "gcc" "src/CMakeFiles/dqsched.dir/sim/network.cc.o.d"
  "/root/repo/src/sim/sim_clock.cc" "src/CMakeFiles/dqsched.dir/sim/sim_clock.cc.o" "gcc" "src/CMakeFiles/dqsched.dir/sim/sim_clock.cc.o.d"
  "/root/repo/src/storage/memory_accountant.cc" "src/CMakeFiles/dqsched.dir/storage/memory_accountant.cc.o" "gcc" "src/CMakeFiles/dqsched.dir/storage/memory_accountant.cc.o.d"
  "/root/repo/src/storage/relation.cc" "src/CMakeFiles/dqsched.dir/storage/relation.cc.o" "gcc" "src/CMakeFiles/dqsched.dir/storage/relation.cc.o.d"
  "/root/repo/src/storage/temp_store.cc" "src/CMakeFiles/dqsched.dir/storage/temp_store.cc.o" "gcc" "src/CMakeFiles/dqsched.dir/storage/temp_store.cc.o.d"
  "/root/repo/src/storage/tuple.cc" "src/CMakeFiles/dqsched.dir/storage/tuple.cc.o" "gcc" "src/CMakeFiles/dqsched.dir/storage/tuple.cc.o.d"
  "/root/repo/src/wrapper/catalog.cc" "src/CMakeFiles/dqsched.dir/wrapper/catalog.cc.o" "gcc" "src/CMakeFiles/dqsched.dir/wrapper/catalog.cc.o.d"
  "/root/repo/src/wrapper/delay_model.cc" "src/CMakeFiles/dqsched.dir/wrapper/delay_model.cc.o" "gcc" "src/CMakeFiles/dqsched.dir/wrapper/delay_model.cc.o.d"
  "/root/repo/src/wrapper/wrapper.cc" "src/CMakeFiles/dqsched.dir/wrapper/wrapper.cc.o" "gcc" "src/CMakeFiles/dqsched.dir/wrapper/wrapper.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
