# Empty dependencies file for dqsched.
# This may be replaced when dependencies are built.
