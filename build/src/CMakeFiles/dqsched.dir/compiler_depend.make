# Empty compiler generated dependencies file for dqsched.
# This may be replaced when dependencies are built.
