src/CMakeFiles/dqsched.dir/core/fragment.cc.o: \
 /root/repo/src/core/fragment.cc /usr/include/stdc-predef.h \
 /root/repo/src/core/events.h
