file(REMOVE_RECURSE
  "CMakeFiles/dqsched_cli.dir/dqsched_cli.cc.o"
  "CMakeFiles/dqsched_cli.dir/dqsched_cli.cc.o.d"
  "dqsched_cli"
  "dqsched_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dqsched_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
