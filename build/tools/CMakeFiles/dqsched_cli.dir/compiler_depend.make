# Empty compiler generated dependencies file for dqsched_cli.
# This may be replaced when dependencies are built.
