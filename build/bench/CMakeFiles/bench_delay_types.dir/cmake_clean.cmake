file(REMOVE_RECURSE
  "CMakeFiles/bench_delay_types.dir/bench_common.cc.o"
  "CMakeFiles/bench_delay_types.dir/bench_common.cc.o.d"
  "CMakeFiles/bench_delay_types.dir/bench_delay_types.cc.o"
  "CMakeFiles/bench_delay_types.dir/bench_delay_types.cc.o.d"
  "bench_delay_types"
  "bench_delay_types.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_delay_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
