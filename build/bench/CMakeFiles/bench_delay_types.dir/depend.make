# Empty dependencies file for bench_delay_types.
# This may be replaced when dependencies are built.
