# Empty dependencies file for bench_ablation_bmt.
# This may be replaced when dependencies are built.
