file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_bmt.dir/bench_ablation_bmt.cc.o"
  "CMakeFiles/bench_ablation_bmt.dir/bench_ablation_bmt.cc.o.d"
  "CMakeFiles/bench_ablation_bmt.dir/bench_common.cc.o"
  "CMakeFiles/bench_ablation_bmt.dir/bench_common.cc.o.d"
  "bench_ablation_bmt"
  "bench_ablation_bmt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_bmt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
