file(REMOVE_RECURSE
  "CMakeFiles/bench_slow_each_relation.dir/bench_common.cc.o"
  "CMakeFiles/bench_slow_each_relation.dir/bench_common.cc.o.d"
  "CMakeFiles/bench_slow_each_relation.dir/bench_slow_each_relation.cc.o"
  "CMakeFiles/bench_slow_each_relation.dir/bench_slow_each_relation.cc.o.d"
  "bench_slow_each_relation"
  "bench_slow_each_relation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_slow_each_relation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
