# Empty compiler generated dependencies file for bench_slow_each_relation.
# This may be replaced when dependencies are built.
