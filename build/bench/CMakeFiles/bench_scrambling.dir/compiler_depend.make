# Empty compiler generated dependencies file for bench_scrambling.
# This may be replaced when dependencies are built.
