file(REMOVE_RECURSE
  "CMakeFiles/bench_scrambling.dir/bench_common.cc.o"
  "CMakeFiles/bench_scrambling.dir/bench_common.cc.o.d"
  "CMakeFiles/bench_scrambling.dir/bench_scrambling.cc.o"
  "CMakeFiles/bench_scrambling.dir/bench_scrambling.cc.o.d"
  "bench_scrambling"
  "bench_scrambling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scrambling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
