file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_slow_f.dir/bench_common.cc.o"
  "CMakeFiles/bench_fig7_slow_f.dir/bench_common.cc.o.d"
  "CMakeFiles/bench_fig7_slow_f.dir/bench_fig7_slow_f.cc.o"
  "CMakeFiles/bench_fig7_slow_f.dir/bench_fig7_slow_f.cc.o.d"
  "bench_fig7_slow_f"
  "bench_fig7_slow_f.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_slow_f.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
