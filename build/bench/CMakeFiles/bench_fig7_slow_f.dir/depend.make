# Empty dependencies file for bench_fig7_slow_f.
# This may be replaced when dependencies are built.
