# Empty dependencies file for bench_fig6_slow_a.
# This may be replaced when dependencies are built.
