file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_slow_a.dir/bench_common.cc.o"
  "CMakeFiles/bench_fig6_slow_a.dir/bench_common.cc.o.d"
  "CMakeFiles/bench_fig6_slow_a.dir/bench_fig6_slow_a.cc.o"
  "CMakeFiles/bench_fig6_slow_a.dir/bench_fig6_slow_a.cc.o.d"
  "bench_fig6_slow_a"
  "bench_fig6_slow_a.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_slow_a.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
