file(REMOVE_RECURSE
  "CMakeFiles/bench_memory_limit.dir/bench_common.cc.o"
  "CMakeFiles/bench_memory_limit.dir/bench_common.cc.o.d"
  "CMakeFiles/bench_memory_limit.dir/bench_memory_limit.cc.o"
  "CMakeFiles/bench_memory_limit.dir/bench_memory_limit.cc.o.d"
  "bench_memory_limit"
  "bench_memory_limit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_memory_limit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
