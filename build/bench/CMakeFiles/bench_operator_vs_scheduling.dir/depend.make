# Empty dependencies file for bench_operator_vs_scheduling.
# This may be replaced when dependencies are built.
