file(REMOVE_RECURSE
  "CMakeFiles/bench_operator_vs_scheduling.dir/bench_common.cc.o"
  "CMakeFiles/bench_operator_vs_scheduling.dir/bench_common.cc.o.d"
  "CMakeFiles/bench_operator_vs_scheduling.dir/bench_operator_vs_scheduling.cc.o"
  "CMakeFiles/bench_operator_vs_scheduling.dir/bench_operator_vs_scheduling.cc.o.d"
  "bench_operator_vs_scheduling"
  "bench_operator_vs_scheduling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_operator_vs_scheduling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
