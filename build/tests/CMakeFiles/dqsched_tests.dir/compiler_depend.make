# Empty compiler generated dependencies file for dqsched_tests.
# This may be replaced when dependencies are built.
