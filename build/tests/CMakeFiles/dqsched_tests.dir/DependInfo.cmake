
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/annotator_reference_test.cc" "tests/CMakeFiles/dqsched_tests.dir/annotator_reference_test.cc.o" "gcc" "tests/CMakeFiles/dqsched_tests.dir/annotator_reference_test.cc.o.d"
  "/root/repo/tests/chain_executor_test.cc" "tests/CMakeFiles/dqsched_tests.dir/chain_executor_test.cc.o" "gcc" "tests/CMakeFiles/dqsched_tests.dir/chain_executor_test.cc.o.d"
  "/root/repo/tests/chain_source_test.cc" "tests/CMakeFiles/dqsched_tests.dir/chain_source_test.cc.o" "gcc" "tests/CMakeFiles/dqsched_tests.dir/chain_source_test.cc.o.d"
  "/root/repo/tests/compiled_plan_test.cc" "tests/CMakeFiles/dqsched_tests.dir/compiled_plan_test.cc.o" "gcc" "tests/CMakeFiles/dqsched_tests.dir/compiled_plan_test.cc.o.d"
  "/root/repo/tests/cost_model_test.cc" "tests/CMakeFiles/dqsched_tests.dir/cost_model_test.cc.o" "gcc" "tests/CMakeFiles/dqsched_tests.dir/cost_model_test.cc.o.d"
  "/root/repo/tests/delay_model_test.cc" "tests/CMakeFiles/dqsched_tests.dir/delay_model_test.cc.o" "gcc" "tests/CMakeFiles/dqsched_tests.dir/delay_model_test.cc.o.d"
  "/root/repo/tests/dphj_test.cc" "tests/CMakeFiles/dqsched_tests.dir/dphj_test.cc.o" "gcc" "tests/CMakeFiles/dqsched_tests.dir/dphj_test.cc.o.d"
  "/root/repo/tests/dqs_dqp_test.cc" "tests/CMakeFiles/dqsched_tests.dir/dqs_dqp_test.cc.o" "gcc" "tests/CMakeFiles/dqsched_tests.dir/dqs_dqp_test.cc.o.d"
  "/root/repo/tests/execution_state_test.cc" "tests/CMakeFiles/dqsched_tests.dir/execution_state_test.cc.o" "gcc" "tests/CMakeFiles/dqsched_tests.dir/execution_state_test.cc.o.d"
  "/root/repo/tests/hash_index_test.cc" "tests/CMakeFiles/dqsched_tests.dir/hash_index_test.cc.o" "gcc" "tests/CMakeFiles/dqsched_tests.dir/hash_index_test.cc.o.d"
  "/root/repo/tests/integration_strategies_test.cc" "tests/CMakeFiles/dqsched_tests.dir/integration_strategies_test.cc.o" "gcc" "tests/CMakeFiles/dqsched_tests.dir/integration_strategies_test.cc.o.d"
  "/root/repo/tests/lwb_mediator_test.cc" "tests/CMakeFiles/dqsched_tests.dir/lwb_mediator_test.cc.o" "gcc" "tests/CMakeFiles/dqsched_tests.dir/lwb_mediator_test.cc.o.d"
  "/root/repo/tests/multi_query_test.cc" "tests/CMakeFiles/dqsched_tests.dir/multi_query_test.cc.o" "gcc" "tests/CMakeFiles/dqsched_tests.dir/multi_query_test.cc.o.d"
  "/root/repo/tests/operand_test.cc" "tests/CMakeFiles/dqsched_tests.dir/operand_test.cc.o" "gcc" "tests/CMakeFiles/dqsched_tests.dir/operand_test.cc.o.d"
  "/root/repo/tests/optimizer_generator_test.cc" "tests/CMakeFiles/dqsched_tests.dir/optimizer_generator_test.cc.o" "gcc" "tests/CMakeFiles/dqsched_tests.dir/optimizer_generator_test.cc.o.d"
  "/root/repo/tests/plan_test.cc" "tests/CMakeFiles/dqsched_tests.dir/plan_test.cc.o" "gcc" "tests/CMakeFiles/dqsched_tests.dir/plan_test.cc.o.d"
  "/root/repo/tests/property_test.cc" "tests/CMakeFiles/dqsched_tests.dir/property_test.cc.o" "gcc" "tests/CMakeFiles/dqsched_tests.dir/property_test.cc.o.d"
  "/root/repo/tests/random_test.cc" "tests/CMakeFiles/dqsched_tests.dir/random_test.cc.o" "gcc" "tests/CMakeFiles/dqsched_tests.dir/random_test.cc.o.d"
  "/root/repo/tests/scrambling_test.cc" "tests/CMakeFiles/dqsched_tests.dir/scrambling_test.cc.o" "gcc" "tests/CMakeFiles/dqsched_tests.dir/scrambling_test.cc.o.d"
  "/root/repo/tests/sim_clock_disk_test.cc" "tests/CMakeFiles/dqsched_tests.dir/sim_clock_disk_test.cc.o" "gcc" "tests/CMakeFiles/dqsched_tests.dir/sim_clock_disk_test.cc.o.d"
  "/root/repo/tests/sim_time_test.cc" "tests/CMakeFiles/dqsched_tests.dir/sim_time_test.cc.o" "gcc" "tests/CMakeFiles/dqsched_tests.dir/sim_time_test.cc.o.d"
  "/root/repo/tests/status_test.cc" "tests/CMakeFiles/dqsched_tests.dir/status_test.cc.o" "gcc" "tests/CMakeFiles/dqsched_tests.dir/status_test.cc.o.d"
  "/root/repo/tests/strategy_semantics_test.cc" "tests/CMakeFiles/dqsched_tests.dir/strategy_semantics_test.cc.o" "gcc" "tests/CMakeFiles/dqsched_tests.dir/strategy_semantics_test.cc.o.d"
  "/root/repo/tests/temp_store_test.cc" "tests/CMakeFiles/dqsched_tests.dir/temp_store_test.cc.o" "gcc" "tests/CMakeFiles/dqsched_tests.dir/temp_store_test.cc.o.d"
  "/root/repo/tests/trace_test.cc" "tests/CMakeFiles/dqsched_tests.dir/trace_test.cc.o" "gcc" "tests/CMakeFiles/dqsched_tests.dir/trace_test.cc.o.d"
  "/root/repo/tests/tuple_relation_test.cc" "tests/CMakeFiles/dqsched_tests.dir/tuple_relation_test.cc.o" "gcc" "tests/CMakeFiles/dqsched_tests.dir/tuple_relation_test.cc.o.d"
  "/root/repo/tests/wrapper_comm_test.cc" "tests/CMakeFiles/dqsched_tests.dir/wrapper_comm_test.cc.o" "gcc" "tests/CMakeFiles/dqsched_tests.dir/wrapper_comm_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dqsched.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
