// Scenario: look inside a DSE run — the paper's authors diagnosed their
// scheduler by "checking the execution traces" (Section 5.3). Prints the
// scheduler's decision log (planning phases, degradations, CF
// activations) and an ASCII timeline of which fragment consumed tuples
// when, making the overlap visible.
//
//   ./example_trace_execution [scale]   (default 0.2)

#include <cstdio>
#include <cstdlib>

#include "core/mediator.h"
#include "plan/canonical_plans.h"

int main(int argc, char** argv) {
  using namespace dqsched;
  const double scale = argc > 1 ? std::atof(argv[1]) : 0.2;

  plan::QuerySetup setup = plan::PaperFigure5Query(scale);
  setup.catalog.sources[0].delay.mean_us *= 3.0;  // A is slow today

  Result<core::Mediator> mediator = core::Mediator::Create(
      std::move(setup.catalog), std::move(setup.plan),
      core::MediatorConfig{});
  if (!mediator.ok()) {
    std::fprintf(stderr, "%s\n", mediator.status().ToString().c_str());
    return 1;
  }

  Result<core::Mediator::TracedExecution> run =
      mediator->ExecuteTraced(core::StrategyKind::kDse);
  if (!run.ok()) {
    std::fprintf(stderr, "%s\n", run.status().ToString().c_str());
    return 1;
  }

  std::printf("response time: %s\n\n",
              FormatDuration(run->metrics.response_time).c_str());
  std::printf("--- scheduler decision log (first 30 events) ---\n%s\n",
              run->trace.RenderEventLog(30).c_str());
  std::printf("--- activity timeline ---\n%s\n",
              run->trace.RenderTimeline(run->fragment_names).c_str());
  std::printf(
      "Reading the timeline: p_A drips slowly across the whole run (it is\n"
      "the slowed source); the MF rows show blocked chains buffering to\n"
      "disk concurrently; the CF rows light up as their ancestors finish\n"
      "and drain the materialized prefixes. Dense '#' regions are where\n"
      "the engine overlapped delays with useful work.\n");
  return 0;
}
