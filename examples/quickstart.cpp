// Quickstart: build the paper's experimental query, execute it under all
// three strategies, and print the comparison the paper's Section 5 makes.
//
//   ./example_quickstart [scale]
//
// `scale` (default 1.0) multiplies every relation cardinality; use e.g.
// 0.1 for a fast run.

#include <cstdio>
#include <cstdlib>

#include "common/table_printer.h"
#include "core/mediator.h"
#include "plan/canonical_plans.h"

int main(int argc, char** argv) {
  using namespace dqsched;
  const double scale = argc > 1 ? std::atof(argv[1]) : 1.0;

  // The paper's five-way join over sources A..F, every wrapper delivering
  // at w_min (~20 us mean inter-tuple delay).
  plan::QuerySetup setup = plan::PaperFigure5Query(scale);
  std::printf("plan: %s\n", setup.plan.ToString(setup.catalog).c_str());

  core::MediatorConfig config;  // Table 1 cost model, 256 MB, bmt=1
  Result<core::Mediator> mediator = core::Mediator::Create(
      std::move(setup.catalog), std::move(setup.plan), config);
  if (!mediator.ok()) {
    std::fprintf(stderr, "setup failed: %s\n",
                 mediator.status().ToString().c_str());
    return 1;
  }

  const core::LwbBreakdown lwb = mediator->LowerBound();
  std::printf("result cardinality (reference): %lld tuples\n",
              static_cast<long long>(mediator->reference().result_card));
  std::printf("analytic lower bound: %s (cpu %s, slowest retrieval %s)\n\n",
              FormatDuration(lwb.bound()).c_str(),
              FormatDuration(lwb.cpu_total).c_str(),
              FormatDuration(lwb.max_retrieval).c_str());

  TablePrinter table({"strategy", "response (s)", "stalled (s)",
                      "degradations", "planning phases", "disk pages W/R"});
  for (core::StrategyKind kind :
       {core::StrategyKind::kSeq, core::StrategyKind::kDse,
        core::StrategyKind::kMa}) {
    Result<core::ExecutionMetrics> m = mediator->Execute(kind);
    if (!m.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", core::StrategyName(kind),
                   m.status().ToString().c_str());
      return 1;
    }
    table.AddRow({core::StrategyName(kind),
                  TablePrinter::Num(ToSecondsF(m->response_time)),
                  TablePrinter::Num(ToSecondsF(m->stalled_time)),
                  std::to_string(m->degradations),
                  std::to_string(m->planning_phases),
                  std::to_string(m->disk.pages_written) + "/" +
                      std::to_string(m->disk.pages_read)});
  }
  table.Print(stdout);
  std::printf("\nLWB = %.3f s; no strategy can beat it.\n",
              ToSecondsF(lwb.bound()));
  return 0;
}
