// Scenario: one remote source turns slow (an overloaded site), the exact
// situation the paper's dynamic scheduling targets. Shows how the engine
// adapts — rate-change events, PC degradations, CF activations — and what
// that buys over the classical iterator model.
//
//   ./example_slow_wrapper [slowdown_factor]   (default 5)

#include <cstdio>
#include <cstdlib>

#include "common/table_printer.h"
#include "core/mediator.h"
#include "plan/canonical_plans.h"

int main(int argc, char** argv) {
  using namespace dqsched;
  const double factor = argc > 1 ? std::atof(argv[1]) : 5.0;

  // Paper query at 30% scale; relation A — which gates half the plan —
  // delivers `factor` times slower than the 100 Mb/s baseline.
  plan::QuerySetup setup = plan::PaperFigure5Query(0.3);
  setup.catalog.sources[0].delay.kind = wrapper::DelayKind::kSlow;
  setup.catalog.sources[0].delay.slow_factor = factor;
  std::printf("relation A slowed %.1fx (mean inter-tuple delay %.0f us)\n\n",
              factor,
              setup.catalog.sources[0].delay.mean_us * factor);

  Result<core::Mediator> mediator = core::Mediator::Create(
      std::move(setup.catalog), std::move(setup.plan),
      core::MediatorConfig{});
  if (!mediator.ok()) {
    std::fprintf(stderr, "%s\n", mediator.status().ToString().c_str());
    return 1;
  }

  TablePrinter table({"strategy", "response (s)", "stalled (s)",
                      "rate-change events", "degradations",
                      "CF activations"});
  for (core::StrategyKind kind :
       {core::StrategyKind::kSeq, core::StrategyKind::kDse}) {
    Result<core::ExecutionMetrics> m = mediator->Execute(kind);
    if (!m.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", core::StrategyName(kind),
                   m.status().ToString().c_str());
      return 1;
    }
    table.AddRow({core::StrategyName(kind),
                  TablePrinter::Num(ToSecondsF(m->response_time)),
                  TablePrinter::Num(ToSecondsF(m->stalled_time)),
                  std::to_string(m->rate_change_events),
                  std::to_string(m->degradations),
                  std::to_string(m->cf_activations)});
  }
  table.Print(stdout);
  std::printf(
      "\nSEQ stalls whenever A's tuples are late; DSE detects A's actual\n"
      "rate (rate-change events), degrades blocked critical chains into\n"
      "materialization fragments, and fills every waiting gap with useful\n"
      "work — then resumes the degraded chains as complement fragments.\n");
  return 0;
}
