// Scenario: the three problematic delay classes the literature identifies
// (paper Section 1.2, after Amsaleg et al.): initial delay, bursty
// arrival, slow delivery. Timeout-based query scrambling targets initial
// delays; DSE handles all three with one mechanism.
//
//   ./example_delay_models

#include <cstdio>

#include "common/table_printer.h"
#include "core/mediator.h"
#include "plan/canonical_plans.h"

int main() {
  using namespace dqsched;

  struct Scenario {
    const char* name;
    const char* story;
    wrapper::DelayConfig delay;
  };
  std::vector<Scenario> scenarios;
  {
    Scenario s{"initial delay",
               "the source spends 1.5 s optimizing/queueing before the "
               "first tuple",
               {}};
    s.delay.kind = wrapper::DelayKind::kInitial;
    s.delay.initial_delay_ms = 1500.0;
    scenarios.push_back(s);
  }
  {
    Scenario s{"bursty arrival",
               "tuples come in 1000-tuple bursts separated by ~80 ms of "
               "silence",
               {}};
    s.delay.kind = wrapper::DelayKind::kBursty;
    s.delay.burst_length = 1000;
    s.delay.burst_gap_ms = 80.0;
    scenarios.push_back(s);
  }
  {
    Scenario s{"slow delivery",
               "the remote site is overloaded: steady but 6x slower",
               {}};
    s.delay.kind = wrapper::DelayKind::kSlow;
    s.delay.slow_factor = 6.0;
    scenarios.push_back(s);
  }

  TablePrinter table({"delay on B", "SEQ (s)", "DSE (s)", "gain (%)"});
  for (const Scenario& scenario : scenarios) {
    std::printf("%-15s %s\n", scenario.name, scenario.story);
    plan::QuerySetup setup = plan::PaperFigure5Query(0.3);
    setup.catalog.sources[1].delay = scenario.delay;  // relation B
    Result<core::Mediator> mediator = core::Mediator::Create(
        std::move(setup.catalog), std::move(setup.plan),
        core::MediatorConfig{});
    if (!mediator.ok()) {
      std::fprintf(stderr, "%s\n", mediator.status().ToString().c_str());
      return 1;
    }
    Result<core::ExecutionMetrics> seq =
        mediator->Execute(core::StrategyKind::kSeq);
    Result<core::ExecutionMetrics> dse =
        mediator->Execute(core::StrategyKind::kDse);
    if (!seq.ok() || !dse.ok()) {
      std::fprintf(stderr, "execution failed\n");
      return 1;
    }
    const double s = ToSecondsF(seq->response_time);
    const double d = ToSecondsF(dse->response_time);
    table.AddRow({scenario.name, TablePrinter::Num(s), TablePrinter::Num(d),
                  TablePrinter::Num(100.0 * (s - d) / s, 1)});
  }
  std::printf("\n");
  table.Print(stdout);
  std::printf(
      "\nOne scheduling mechanism — monitor rates, degrade blocked critical\n"
      "chains, interleave by priority — absorbs all three delay shapes;\n"
      "no timeout tuning involved (paper Sections 1.3 and 6).\n");
  return 0;
}
