// Scenario: the memory available at run time is far below what the
// compile-time plan assumed (paper Section 4.2). The dynamic optimizer
// (DQO) reacts to M-schedulability violations by evicting resident
// operands and splitting chains into disk-staged fragments, instead of
// letting the system thrash.
//
//   ./example_memory_limited [budget_mb]   (default sweeps several)

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "common/table_printer.h"
#include "core/mediator.h"
#include "plan/canonical_plans.h"

int main(int argc, char** argv) {
  using namespace dqsched;
  std::vector<double> budgets_mb;
  if (argc > 1) {
    budgets_mb.push_back(std::atof(argv[1]));
  } else {
    budgets_mb = {64, 8, 4, 2, 1};
  }

  const plan::QuerySetup base = plan::PaperFigure5Query(0.2);
  TablePrinter table({"memory (MB)", "DSE response (s)", "operand spills +",
                      "DQO splits", "peak memory (MB)", "result tuples"});
  for (double mb : budgets_mb) {
    plan::QuerySetup setup = base;
    core::MediatorConfig config;
    config.memory_budget_bytes = static_cast<int64_t>(mb * 1024 * 1024);
    Result<core::Mediator> mediator = core::Mediator::Create(
        std::move(setup.catalog), std::move(setup.plan), std::move(config));
    if (!mediator.ok()) {
      std::fprintf(stderr, "%s\n", mediator.status().ToString().c_str());
      return 1;
    }
    Result<core::ExecutionMetrics> m =
        mediator->Execute(core::StrategyKind::kDse);
    if (!m.ok()) {
      table.AddRow({TablePrinter::Num(mb, 1),
                    "infeasible (" + std::string(m.status().ToString()) + ")",
                    "-", "-", "-", "-"});
      continue;
    }
    table.AddRow(
        {TablePrinter::Num(mb, 1),
         TablePrinter::Num(ToSecondsF(m->response_time)),
         std::to_string(m->temps.temps_created),
         std::to_string(m->dqo_splits),
         TablePrinter::Num(
             static_cast<double>(m->peak_memory_bytes) / 1048576.0, 2),
         std::to_string(m->result_count)});
  }
  table.Print(stdout);
  std::printf(
      "\nThe answer (result tuples) is identical at every feasible budget;\n"
      "shrinking memory trades disk traffic and response time for\n"
      "fitting — never correctness. Below the feasibility floor (one\n"
      "join's operand + hash index alone exceeding the budget) execution\n"
      "is rejected cleanly.\n");
  return 0;
}
