// Scenario: bring your own integration query. Shows the full pipeline a
// downstream user follows — describe sources (catalog), generate or write
// a join graph, let the DP optimizer produce a bushy plan (the paper's
// compile-time half), then execute it with the dynamic engine.
//
//   ./example_custom_query [num_sources] [seed]

#include <cstdio>
#include <cstdlib>

#include "common/table_printer.h"
#include "core/mediator.h"
#include "plan/query_generator.h"

int main(int argc, char** argv) {
  using namespace dqsched;
  const int num_sources = argc > 1 ? std::atoi(argv[1]) : 6;
  const uint64_t seed = argc > 2 ? static_cast<uint64_t>(std::atoll(argv[2]))
                                 : 2026;

  // 1. A random catalog + tree-shaped join graph (stand-in for your own).
  plan::GeneratorConfig gen;
  gen.num_sources = num_sources;
  gen.min_cardinality = 5000;
  gen.max_cardinality = 60000;
  gen.seed = seed;
  const plan::GeneratedGraph graph = plan::GenerateJoinGraph(gen);
  std::printf("catalog: %d sources, %zu join predicates\n",
              graph.catalog.num_sources(), graph.edges.size());
  for (const auto& s : graph.catalog.sources) {
    std::printf("  %-4s %8lld tuples\n", s.relation.name.c_str(),
                static_cast<long long>(s.relation.cardinality));
  }

  // 2. Classical dynamic-programming optimization into a bushy plan.
  Result<plan::Plan> optimized = plan::OptimizeBushy(graph.catalog,
                                                     graph.edges);
  if (!optimized.ok()) {
    std::fprintf(stderr, "optimizer: %s\n",
                 optimized.status().ToString().c_str());
    return 1;
  }
  std::printf("optimized bushy plan: %s (estimated C_out cost %.0f)\n\n",
              optimized->ToString(graph.catalog).c_str(),
              plan::EstimatePlanCost(*optimized, graph.catalog));

  // 3. Execute with the dynamic engine; one source is unpredictably slow.
  plan::QuerySetup setup{graph.catalog, std::move(optimized.value())};
  setup.catalog.sources[0].delay.kind = wrapper::DelayKind::kSlow;
  setup.catalog.sources[0].delay.slow_factor = 4.0;

  Result<core::Mediator> mediator = core::Mediator::Create(
      std::move(setup.catalog), std::move(setup.plan),
      core::MediatorConfig{});
  if (!mediator.ok()) {
    std::fprintf(stderr, "%s\n", mediator.status().ToString().c_str());
    return 1;
  }
  std::printf("result cardinality (oracle): %lld tuples\n\n",
              static_cast<long long>(mediator->reference().result_card));

  TablePrinter table({"strategy", "response (s)", "vs LWB"});
  const double lwb = ToSecondsF(mediator->LowerBound().bound());
  for (core::StrategyKind kind :
       {core::StrategyKind::kSeq, core::StrategyKind::kDse,
        core::StrategyKind::kMa}) {
    Result<core::ExecutionMetrics> m = mediator->Execute(kind);
    if (!m.ok()) {
      std::fprintf(stderr, "%s: %s\n", core::StrategyName(kind),
                   m.status().ToString().c_str());
      return 1;
    }
    const double s = ToSecondsF(m->response_time);
    table.AddRow({core::StrategyName(kind), TablePrinter::Num(s),
                  TablePrinter::Num(s / lwb, 2) + "x"});
  }
  table.Print(stdout);
  std::printf("\nanalytic lower bound: %.3f s\n", lwb);
  return 0;
}
